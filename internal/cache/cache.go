// Package cache implements SUDAF's dynamic aggregation-state cache
// (Sections 3.2 and 5 of the paper). The cache is keyed on the *data
// fingerprint* of a query's data part (tables, join conditions,
// predicates, grouping) — the paper's data dimension — and stores, per
// fingerprint, a group table: the group keys plus one value vector per
// cached aggregation state (the computation dimension).
//
// Lookups first try exact state-key matches, then the sharing machinery:
// the precomputed symbolic space answers "does the requested state share
// a cached one?" in O(1) per candidate, with the direct (verified)
// decision procedure as the authority. Rewriting functions are applied
// per group, so a hit costs O(#groups) instead of a base-data scan — the
// source of the paper's two-orders-of-magnitude speedups.
//
// Section 5.3's sign handling is supported through companion states: a
// product or log state over data that is not provably positive is cached
// as the pair (Σ ln|b|, Π sgn(b)), from which Π b and the log family are
// reconstructed.
//
// # Concurrency
//
// The cache is safe for concurrent use by any number of query goroutines.
// Entries are striped across shards by fingerprint hash; each shard has
// its own mutex, LRU order and byte budget, so queries over different
// data parts never contend on a lock. Counters are atomics, readable
// without any lock.
//
// The locking contract for GroupTable is split by field:
//
//   - Fingerprint, KeyNames, Keys, KeyCols and the key index are immutable
//     after NewGroupTable, so a *GroupTable returned by Entry can be read
//     (IndexOf, NumGroups, Keys, ...) without holding any lock.
//   - states/byKey are mutated only by cache methods holding the owning
//     shard's mutex. Callers outside this package must not call AddState
//     on a table that has been Put (build a fresh table and Put it).
//   - A CachedState's Vals slice is never written after insertion; value
//     slices returned by Lookup are shared and read-only.
package cache

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/faultinject"
	"sudaf/internal/scalar"
	"sudaf/internal/sharing"
	"sudaf/internal/storage"
	"sudaf/internal/symbolic"
)

// GroupKey mirrors exec.GroupKey (composite int64 group key).
type GroupKey = [2]int64

// CachedState is one aggregation state's per-group values.
type CachedState struct {
	State canonical.State
	Vals  []float64
	// PositiveInput records whether every base value folded into this
	// state was > 0 (enables the positive-domain sharing cases).
	PositiveInput bool
	// checksum is the integrity checksum over Vals, set by AddState. A
	// mismatch on lookup marks the state corrupted: it is dropped and the
	// query recomputes from base data instead of failing.
	checksum uint64
}

// ChecksumVals computes the FNV-1a integrity checksum of a value vector.
func ChecksumVals(vals []float64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range vals {
		bits := math.Float64bits(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(bits >> (8 * i))
		}
		_, _ = h.Write(b[:])
	}
	return h.Sum64()
}

// verify reports whether the state's values still match their checksum.
func (cs *CachedState) verify() bool { return ChecksumVals(cs.Vals) == cs.checksum }

// GroupTable is the cached content for one data fingerprint.
type GroupTable struct {
	Fingerprint string
	KeyNames    []string
	Keys        []GroupKey
	KeyCols     []*storage.Column // materialized key columns, aligned with Keys
	// Maint is an opaque maintenance record attached by the session when
	// the entry is Put: everything needed to re-plan this entry's data
	// part over an append delta (statement + the table versions the
	// states were computed at). nil means the entry cannot be delta-
	// maintained and is invalidated (dropped) when its data changes.
	// Set before Put and treated as immutable afterwards.
	Maint any
	states      []*CachedState
	byKey       map[string]int
	index       map[GroupKey]int
}

// NewGroupTable creates an empty group table.
func NewGroupTable(fp string, keyNames []string, keys []GroupKey, keyCols []*storage.Column) *GroupTable {
	gt := &GroupTable{
		Fingerprint: fp,
		KeyNames:    keyNames,
		Keys:        keys,
		KeyCols:     keyCols,
		byKey:       map[string]int{},
		index:       make(map[GroupKey]int, len(keys)),
	}
	for i, k := range keys {
		gt.index[k] = i
	}
	return gt
}

// IndexOf returns the group position of a key.
func (gt *GroupTable) IndexOf(k GroupKey) (int, bool) {
	i, ok := gt.index[k]
	return i, ok
}

// Align reorders values given in the order of keys into this table's
// group order. It fails when the key sets differ.
func (gt *GroupTable) Align(keys []GroupKey, vals []float64) ([]float64, bool) {
	if len(keys) != len(gt.Keys) {
		return nil, false
	}
	out := make([]float64, len(vals))
	for g, k := range keys {
		i, ok := gt.index[k]
		if !ok {
			return nil, false
		}
		out[i] = vals[g]
	}
	return out, true
}

// NumGroups returns the group count.
func (gt *GroupTable) NumGroups() int { return len(gt.Keys) }

// NumStates returns the number of cached states.
func (gt *GroupTable) NumStates() int { return len(gt.states) }

// StateKeys lists cached state keys.
func (gt *GroupTable) StateKeys() []string {
	out := make([]string, len(gt.states))
	for i, s := range gt.states {
		out[i] = s.State.Key()
	}
	return out
}

// AddState inserts or replaces a state's values (length must match) and
// stamps the integrity checksum verified on later lookups.
func (gt *GroupTable) AddState(cs *CachedState) error {
	if len(cs.Vals) != len(gt.Keys) {
		return fmt.Errorf("state %s: %d values for %d groups", cs.State.Key(), len(cs.Vals), len(gt.Keys))
	}
	cs.checksum = ChecksumVals(cs.Vals)
	k := cs.State.Key()
	if i, ok := gt.byKey[k]; ok {
		gt.states[i] = cs
		return nil
	}
	gt.byKey[k] = len(gt.states)
	gt.states = append(gt.states, cs)
	return nil
}

// dropState removes a state by key, rebuilding the key index.
func (gt *GroupTable) dropState(key string) {
	i, ok := gt.byKey[key]
	if !ok {
		return
	}
	gt.states = append(gt.states[:i], gt.states[i+1:]...)
	delete(gt.byKey, key)
	for k, j := range gt.byKey {
		if j > i {
			gt.byKey[k] = j - 1
		}
	}
}

// Exact returns the cached state with the given key.
func (gt *GroupTable) Exact(key string) (*CachedState, bool) {
	if i, ok := gt.byKey[key]; ok {
		return gt.states[i], true
	}
	return nil, false
}

// bytes approximates the memory footprint for eviction accounting.
func (gt *GroupTable) bytes() int64 {
	per := int64(16) // key
	per += int64(len(gt.states)) * 8
	return int64(len(gt.Keys))*per + 1024
}

// ToTable materializes the group table as a storage table (used as a
// materialized aggregate view for query rewriting, §2's V1). State value
// columns are named by stateName.
func (gt *GroupTable) ToTable(name string, stateName func(i int, s *CachedState) string) *storage.Table {
	t := storage.NewTable(name)
	for _, kc := range gt.KeyCols {
		t.AddColumn(kc)
	}
	for i, s := range gt.states {
		col := storage.NewColumn(stateName(i, s), storage.KindFloat)
		col.F = append(col.F, s.Vals...)
		t.AddColumn(col)
	}
	return t
}

// Stats counts cache activity. It is a plain snapshot struct; the live
// counters inside Cache are atomics.
type Stats struct {
	Lookups    int64 // state lookup attempts
	ExactHits  int64 // exact state-key hits
	SharedHits int64 // hits via Theorem 4.1 rewritings
	SignHits   int64 // hits via §5.3 sign-split companions
	Misses     int64
	Evictions  int64
	// Corruptions counts cached states dropped because their integrity
	// checksum no longer matched (each is a degradation event: the query
	// fell back to recomputation instead of failing).
	Corruptions int64
}

// HitKind classifies how a Lookup was served.
type HitKind int

const (
	// HitNone: the lookup missed.
	HitNone HitKind = iota
	// HitExact: the exact state key was cached.
	HitExact
	// HitShared: served through a Theorem 4.1 rewriting.
	HitShared
	// HitSign: reconstructed from §5.3 sign-split companions.
	HitSign
)

func (k HitKind) String() string {
	switch k {
	case HitExact:
		return "exact"
	case HitShared:
		return "shared"
	case HitSign:
		return "sign"
	}
	return "miss"
}

// DefaultShards is the stripe count of a cache built with New. 32 shards
// keep the per-shard mutex essentially uncontended for any realistic
// client count (lock hold times are O(#groups) at worst) while the
// per-shard LRU budget (total/32) still holds many group tables.
const DefaultShards = 32

// shard is one stripe: a fingerprint→GroupTable map with its own lock,
// LRU order and byte budget.
type shard struct {
	mu       sync.Mutex
	entries  map[string]*GroupTable
	order    []string // LRU order, most recent last
	maxBytes int64
	curBytes int64
}

// Cache is the session-wide state cache, striped by fingerprint with LRU
// eviction per shard. All methods are safe for concurrent use.
type Cache struct {
	shards []*shard
	space  *symbolic.Space

	lookups     atomic.Int64
	exactHits   atomic.Int64
	sharedHits  atomic.Int64
	signHits    atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	corruptions atomic.Int64

	// events records degradation events (corruption fallbacks, injected
	// faults) until drained by the session. Guarded by evMu, which is
	// only ever taken after (or without) a shard mutex — never the
	// reverse — so the lock order shard.mu → evMu is acyclic.
	evMu   sync.Mutex
	events []string
}

// New creates a cache with the given byte budget (≤0 means 256 MiB), the
// default stripe count, and an optional precomputed symbolic space for
// fast sharing lookups.
func New(maxBytes int64, space *symbolic.Space) *Cache {
	return NewSharded(maxBytes, 0, space)
}

// NewSharded creates a cache with an explicit stripe count (≤0 means
// DefaultShards). The byte budget is divided evenly across shards.
func NewSharded(maxBytes int64, shards int, space *symbolic.Space) *Cache {
	if maxBytes <= 0 {
		maxBytes = 256 << 20
	}
	if shards <= 0 {
		shards = DefaultShards
	}
	per := maxBytes / int64(shards)
	if per < 4096 {
		per = 4096
	}
	c := &Cache{shards: make([]*shard, shards), space: space}
	for i := range c.shards {
		c.shards[i] = &shard{entries: map[string]*GroupTable{}, maxBytes: per}
	}
	return c
}

// NumShards returns the stripe count.
func (c *Cache) NumShards() int { return len(c.shards) }

// shardFor maps a fingerprint to its stripe.
func (c *Cache) shardFor(fp string) *shard {
	h := fnv.New32a()
	_, _ = h.Write([]byte(fp))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Stats returns a snapshot of the counters. The snapshot is not a
// consistent cut across counters under concurrent traffic (each counter
// is read atomically on its own), but quiescent reads are exact.
func (c *Cache) Stats() Stats {
	return Stats{
		Lookups:     c.lookups.Load(),
		ExactHits:   c.exactHits.Load(),
		SharedHits:  c.sharedHits.Load(),
		SignHits:    c.signHits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Corruptions: c.corruptions.Load(),
	}
}

// ResetStats zeroes the counters.
func (c *Cache) ResetStats() {
	c.lookups.Store(0)
	c.exactHits.Store(0)
	c.sharedHits.Store(0)
	c.signHits.Store(0)
	c.misses.Store(0)
	c.evictions.Store(0)
	c.corruptions.Store(0)
}

// Entry returns the group table for a fingerprint. The returned table's
// key structure is immutable and safe to read without locks; see the
// package comment for the full contract.
func (c *Cache) Entry(fp string) (*GroupTable, bool) {
	sh := c.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	gt, ok := sh.entries[fp]
	if ok {
		sh.touch(fp)
	}
	return gt, ok
}

// Put inserts or merges a group table; existing states under the same
// fingerprint are kept (states accumulate across queries). Incoming
// state vectors are realigned to the existing entry's group order; if
// the group sets differ (the underlying data changed), the incoming
// table replaces the entry. The caller must not modify gt after Put.
func (c *Cache) Put(gt *GroupTable) {
	sh := c.shardFor(gt.Fingerprint)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.entries[gt.Fingerprint]; ok {
		sh.curBytes -= prev.bytes()
		replaced := false
		for _, s := range gt.states {
			aligned, ok := prev.Align(gt.Keys, s.Vals)
			if !ok {
				replaced = true
				break
			}
			_ = prev.AddState(&CachedState{State: s.State, Vals: aligned, PositiveInput: s.PositiveInput})
		}
		if replaced {
			sh.entries[gt.Fingerprint] = gt
			sh.curBytes += gt.bytes()
		} else {
			if gt.Maint != nil {
				prev.Maint = gt.Maint
			}
			sh.curBytes += prev.bytes()
		}
		sh.touch(gt.Fingerprint)
		c.evict(sh)
		return
	}
	sh.entries[gt.Fingerprint] = gt
	sh.order = append(sh.order, gt.Fingerprint)
	sh.curBytes += gt.bytes()
	c.evict(sh)
}

// touch moves a fingerprint to the MRU end. Caller holds sh.mu.
func (sh *shard) touch(fp string) {
	for i, f := range sh.order {
		if f == fp {
			sh.order = append(append(sh.order[:i:i], sh.order[i+1:]...), fp)
			return
		}
	}
}

// evict drops LRU entries until the shard fits its budget. Caller holds
// sh.mu.
func (c *Cache) evict(sh *shard) {
	for sh.curBytes > sh.maxBytes && len(sh.order) > 1 {
		victim := sh.order[0]
		sh.order = sh.order[1:]
		if gt, ok := sh.entries[victim]; ok {
			sh.curBytes -= gt.bytes()
			delete(sh.entries, victim)
			c.evictions.Add(1)
		}
	}
}

// Remove deletes the entry under a fingerprint (targeted invalidation:
// the ingestion path retires superseded-version entries after migrating
// them, and drops entries it cannot delta-maintain). Reports whether an
// entry was removed.
func (c *Cache) Remove(fp string) bool {
	sh := c.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	gt, ok := sh.entries[fp]
	if !ok {
		return false
	}
	sh.curBytes -= gt.bytes()
	delete(sh.entries, fp)
	for i, f := range sh.order {
		if f == fp {
			sh.order = append(sh.order[:i:i], sh.order[i+1:]...)
			break
		}
	}
	return true
}

// EntrySnapshot is a point-in-time copy of one cache entry's contents:
// the key structure (immutable, shared), the state list as of the
// snapshot (the slice is copied under the shard lock; the CachedState
// values and their Vals are shared read-only per the package contract),
// and the maintenance record. Used by the ingestion path to walk the
// cache without holding shard locks across re-planning and execution.
type EntrySnapshot struct {
	Fingerprint string
	KeyNames    []string
	Keys        []GroupKey
	KeyCols     []*storage.Column
	States      []*CachedState
	Maint       any
}

// SnapshotEntry exports a group table as an EntrySnapshot. Only valid on
// a table the caller still owns (before Put): afterwards the state list
// is guarded by the owning shard's mutex. The ingestion path uses it to
// keep an eviction-independent copy of a materialized view's states.
func (gt *GroupTable) SnapshotEntry() EntrySnapshot {
	return EntrySnapshot{
		Fingerprint: gt.Fingerprint,
		KeyNames:    gt.KeyNames,
		Keys:        gt.Keys,
		KeyCols:     gt.KeyCols,
		States:      append([]*CachedState(nil), gt.states...),
		Maint:       gt.Maint,
	}
}

// Snapshot copies every entry's state list out of the cache, one shard
// lock at a time. Entries added or mutated concurrently may or may not
// appear; callers (the append path) serialize ingestion themselves.
func (c *Cache) Snapshot() []EntrySnapshot {
	var out []EntrySnapshot
	for _, sh := range c.shards {
		sh.mu.Lock()
		for _, gt := range sh.entries {
			out = append(out, EntrySnapshot{
				Fingerprint: gt.Fingerprint,
				KeyNames:    gt.KeyNames,
				Keys:        gt.Keys,
				KeyCols:     gt.KeyCols,
				States:      append([]*CachedState(nil), gt.states...),
				Maint:       gt.Maint,
			})
		}
		sh.mu.Unlock()
	}
	return out
}

// MergeDelta is the delta-merge entry point of incremental ingestion: it
// folds one append batch's per-group state values into a prior entry
// snapshot, producing the successor entry under the post-append
// fingerprint. The union group set keeps the prior entry's group order
// first (so existing consumers see a stable prefix) with groups new in
// the delta appended in delta order; a prior group absent from the delta
// merges the state's identity (i.e. stays unchanged), and a brand-new
// group starts from the identity. Integrity checksums are recomputed by
// AddState over the merged vectors.
//
// deltaVals maps state key → per-group values aligned with deltaKeys;
// every state in prev must be present (a missing state means the delta
// run did not cover the entry, and the whole entry must be invalidated
// instead). deltaPositive maps state key → whether every delta base
// value was provably positive; it is ANDed into PositiveInput.
func MergeDelta(prev EntrySnapshot, newFP string, deltaKeys []GroupKey, deltaKeyCols []*storage.Column,
	deltaVals map[string][]float64, deltaPositive map[string]bool, maint any) (*GroupTable, error) {

	union := append([]GroupKey(nil), prev.Keys...)
	pos := make(map[GroupKey]int, len(union))
	for i, k := range union {
		pos[k] = i
	}
	var newRows []int // delta row index of each brand-new group, in delta order
	for i, k := range deltaKeys {
		if _, ok := pos[k]; !ok {
			pos[k] = len(union)
			union = append(union, k)
			newRows = append(newRows, i)
		}
	}

	// Key columns: prior rows copied, then the new groups' key rows from
	// the delta run. Fresh columns — the prior entry's are immutable and
	// may still be read by in-flight queries.
	if len(deltaKeyCols) != len(prev.KeyCols) {
		return nil, fmt.Errorf("merge delta: %d key columns, want %d", len(deltaKeyCols), len(prev.KeyCols))
	}
	keyCols := make([]*storage.Column, len(prev.KeyCols))
	for ci, kc := range prev.KeyCols {
		nc := storage.NewColumn(kc.Name, kc.Kind)
		for g := 0; g < len(prev.Keys); g++ {
			appendValue(nc, kc, g)
		}
		for _, di := range newRows {
			appendValue(nc, deltaKeyCols[ci], di)
		}
		keyCols[ci] = nc
	}

	gt := NewGroupTable(newFP, prev.KeyNames, union, keyCols)
	gt.Maint = maint
	for _, cs := range prev.States {
		key := cs.State.Key()
		dv, ok := deltaVals[key]
		if !ok {
			return nil, fmt.Errorf("merge delta: state %s missing from delta run", key)
		}
		if len(dv) != len(deltaKeys) {
			return nil, fmt.Errorf("merge delta: state %s: %d delta values for %d delta groups", key, len(dv), len(deltaKeys))
		}
		// Scatter the delta into union order with identity padding, then
		// one ⊕-merge per group (canonical.State.MergeVals).
		acc := make([]float64, len(union))
		id := cs.State.MergeIdentity()
		copy(acc, cs.Vals)
		for i := len(prev.Keys); i < len(union); i++ {
			acc[i] = id
		}
		aligned := make([]float64, len(union))
		for i := range aligned {
			aligned[i] = id
		}
		for i, k := range deltaKeys {
			aligned[pos[k]] = dv[i]
		}
		merged := cs.State.MergeVals(acc, aligned)
		if err := gt.AddState(&CachedState{
			State:         cs.State,
			Vals:          merged,
			PositiveInput: cs.PositiveInput && deltaPositive[key],
		}); err != nil {
			return nil, err
		}
	}
	return gt, nil
}

// appendValue appends src's row i onto dst (same kind).
func appendValue(dst, src *storage.Column, i int) {
	switch src.Kind {
	case storage.KindFloat:
		dst.AppendFloat(src.F[i])
	case storage.KindInt:
		dst.AppendInt(src.I[i])
	default:
		dst.AppendString(src.StringAt(i))
	}
}

// addEvent appends a degradation event.
func (c *Cache) addEvent(ev string) {
	c.evMu.Lock()
	c.events = append(c.events, ev)
	c.evMu.Unlock()
}

// AddEvent records a degradation event from outside the package (the
// ingestion path notes entries and views it had to invalidate instead of
// delta-maintaining); drained into the next query's Result.Events.
func (c *Cache) AddEvent(ev string) { c.addEvent(ev) }

// DrainEvents returns and clears accumulated degradation events.
func (c *Cache) DrainEvents() []string {
	c.evMu.Lock()
	defer c.evMu.Unlock()
	ev := c.events
	c.events = nil
	return ev
}

// CheckInvariants verifies the cache's structural invariants — byte
// accounting matches entry contents and never goes negative, LRU order
// mirrors the entry set, every cached state is internally consistent,
// and counters balance (lookups = hits + misses). The counter-balance
// check is only meaningful at quiescence — an in-flight lookup has
// incremented Lookups but not yet its outcome — so call it when no
// lookups are running (the structural checks are valid at any time).
// Used by the concurrency property tests; it takes every shard lock,
// one at a time.
func (c *Cache) CheckInvariants() error {
	for si, sh := range c.shards {
		sh.mu.Lock()
		var sum int64
		for fp, gt := range sh.entries {
			sum += gt.bytes()
			if len(gt.states) != len(gt.byKey) {
				sh.mu.Unlock()
				return fmt.Errorf("shard %d entry %s: %d states but %d keys", si, fp, len(gt.states), len(gt.byKey))
			}
			for key, i := range gt.byKey {
				if i < 0 || i >= len(gt.states) {
					sh.mu.Unlock()
					return fmt.Errorf("shard %d entry %s: key %s maps to out-of-range index %d", si, fp, key, i)
				}
				if gt.states[i].State.Key() != key {
					sh.mu.Unlock()
					return fmt.Errorf("shard %d entry %s: key %s maps to state %s", si, fp, key, gt.states[i].State.Key())
				}
			}
			for _, s := range gt.states {
				if len(s.Vals) != len(gt.Keys) {
					sh.mu.Unlock()
					return fmt.Errorf("shard %d entry %s state %s: %d values for %d groups",
						si, fp, s.State.Key(), len(s.Vals), len(gt.Keys))
				}
			}
		}
		if sh.curBytes < 0 {
			sh.mu.Unlock()
			return fmt.Errorf("shard %d: negative byte accounting %d", si, sh.curBytes)
		}
		if sh.curBytes != sum {
			sh.mu.Unlock()
			return fmt.Errorf("shard %d: accounted %d bytes, entries hold %d", si, sh.curBytes, sum)
		}
		if len(sh.order) != len(sh.entries) {
			sh.mu.Unlock()
			return fmt.Errorf("shard %d: %d LRU slots for %d entries", si, len(sh.order), len(sh.entries))
		}
		seen := map[string]bool{}
		for _, fp := range sh.order {
			if seen[fp] {
				sh.mu.Unlock()
				return fmt.Errorf("shard %d: fingerprint %s appears twice in LRU order", si, fp)
			}
			seen[fp] = true
			if _, ok := sh.entries[fp]; !ok {
				sh.mu.Unlock()
				return fmt.Errorf("shard %d: LRU order references missing entry %s", si, fp)
			}
		}
		sh.mu.Unlock()
	}
	st := c.Stats()
	for _, v := range []int64{st.Lookups, st.ExactHits, st.SharedHits, st.SignHits, st.Misses, st.Evictions, st.Corruptions} {
		if v < 0 {
			return fmt.Errorf("negative counter in %+v", st)
		}
	}
	if st.Lookups != st.ExactHits+st.SharedHits+st.SignHits+st.Misses {
		return fmt.Errorf("lost stats increments: %d lookups vs %d outcomes (%+v)",
			st.Lookups, st.ExactHits+st.SharedHits+st.SignHits+st.Misses, st)
	}
	return nil
}

// sweepCorrupt drops every cached state under gt whose values no longer
// match their integrity checksum, recording a degradation event per
// state. The caller holds the owning shard's mutex.
func (c *Cache) sweepCorrupt(sh *shard, gt *GroupTable) {
	var bad []string
	for _, s := range gt.states {
		if !s.verify() {
			bad = append(bad, s.State.Key())
		}
	}
	if len(bad) == 0 {
		return
	}
	sh.curBytes -= gt.bytes()
	for _, key := range bad {
		gt.dropState(key)
		c.corruptions.Add(1)
		c.addEvent(fmt.Sprintf("cache: state %s under %s failed integrity check; dropped, recomputing from base data", key, gt.Fingerprint))
	}
	sh.curBytes += gt.bytes()
}

// Lookup resolves a requested state under a fingerprint; see LookupKind.
func (c *Cache) Lookup(fp string, want canonical.State, positiveData bool) ([]float64, bool) {
	vals, _, ok := c.LookupKind(fp, want, positiveData)
	return vals, ok
}

// LookupKind resolves a requested state under a fingerprint: exact match,
// Theorem 4.1 sharing, or §5.3 sign-split reconstruction, reporting which
// path served the hit. On success it returns the per-group values
// (freshly materialized if rewritten); the returned slice is shared and
// must not be written. Corrupted states (integrity-check failures) are
// dropped and reported as misses, so callers degrade to recomputation
// rather than failing.
func (c *Cache) LookupKind(fp string, want canonical.State, positiveData bool) ([]float64, HitKind, bool) {
	sh := c.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.lookups.Add(1)
	if err := faultinject.Hit(faultinject.PointCacheGet); err != nil {
		c.misses.Add(1)
		c.addEvent("cache: injected fault on get, treated as miss: " + err.Error())
		return nil, HitNone, false
	}
	gt, ok := sh.entries[fp]
	if !ok {
		c.misses.Add(1)
		return nil, HitNone, false
	}
	sh.touch(fp)
	c.sweepCorrupt(sh, gt)
	if cs, ok := gt.Exact(want.Key()); ok {
		c.exactHits.Add(1)
		return cs.Vals, HitExact, true
	}
	// Sharing pass: find a cached state the request shares.
	for _, cand := range gt.states {
		if cand.State.Op == canonical.OpCount && want.Op != canonical.OpCount {
			continue
		}
		pos := positiveData || cand.PositiveInput
		// Fast path: the precomputed symbolic digraph.
		if c.space != nil && sameBase(want, cand.State) {
			if r, ok := c.space.ShareVia(want.Op, want.F.NormalizeReal(), cand.State.Op, cand.State.F.NormalizeReal()); ok && pos {
				// Confirm with the verified direct procedure, then apply.
				if _, confirmed := sharing.Share(want, cand.State, pos); confirmed {
					vals := applyScalar(r, cand.Vals)
					c.sharedHits.Add(1)
					c.storeDerived(sh, gt, want, vals, cand.PositiveInput)
					return vals, HitShared, true
				}
			}
		}
		if r, ok := sharing.Share(want, cand.State, pos); ok {
			fn, err := r.Compile()
			if err != nil {
				continue
			}
			vals := applyScalar(fn, cand.Vals)
			c.sharedHits.Add(1)
			c.storeDerived(sh, gt, want, vals, cand.PositiveInput)
			return vals, HitShared, true
		}
	}
	// Sign-split reconstruction (§5.3): Π b from (Σ ln|b|, Π sgn b);
	// Σ a·ln|b|-shaped states likewise.
	if vals, ok := c.signSplitLookup(gt, want); ok {
		c.signHits.Add(1)
		c.storeDerived(sh, gt, want, vals, false)
		return vals, HitSign, true
	}
	c.misses.Add(1)
	return nil, HitNone, false
}

// ProbeResult is the read-only provenance record of how a state lookup
// would be served; see Cache.Probe. EXPLAIN renders it.
type ProbeResult struct {
	// Kind classifies the would-be outcome (exact/shared/sign/miss).
	Kind HitKind
	// Matched is the key of the cached state that serves the hit (the
	// sharing source for a shared hit); empty on a miss.
	Matched string
	// Rewrite is the scalar rewriting r with want = r∘matched, rendered
	// over "s"; set only for shared hits (exact hits are identity).
	Rewrite string
	// Conditions are the parameter conditions the sharing decision
	// checked, rendered "expr = value"; empty means unconditional
	// ("strong") sharing.
	Conditions []string
	// PositiveOnly reports that the rewriting is sound only over
	// positive data (satisfied here by column stats or a positive-input
	// cached source).
	PositiveOnly bool
	// Companions are the §5.3 sign-split companion state keys a HitSign
	// reconstruction reads.
	Companions []string
	// Candidates are the healthy cached state keys under the fingerprint
	// at probe time — what the sharing pass had to work with.
	Candidates []string
	// Reason explains a miss in one sentence; empty on a hit.
	Reason string
}

// Probe reports how LookupKind would serve a state under a fingerprint,
// with full provenance and without observable side effects: no LRU
// touch, no stats counters, no derived-state materialization, and
// corrupted states are skipped rather than dropped. It is the EXPLAIN
// back end; the serving path stays LookupKind.
func (c *Cache) Probe(fp string, want canonical.State, positiveData bool) ProbeResult {
	sh := c.shardFor(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	gt, ok := sh.entries[fp]
	if !ok {
		return ProbeResult{Kind: HitNone, Reason: "no cached entry under this data fingerprint"}
	}
	res := ProbeResult{Kind: HitNone}
	for _, s := range gt.states {
		if s.verify() {
			res.Candidates = append(res.Candidates, s.State.Key())
		}
	}
	if cs, ok := gt.Exact(want.Key()); ok && cs.verify() {
		res.Kind = HitExact
		res.Matched = want.Key()
		return res
	}
	for _, cand := range gt.states {
		if !cand.verify() {
			continue
		}
		if cand.State.Op == canonical.OpCount && want.Op != canonical.OpCount {
			continue
		}
		pos := positiveData || cand.PositiveInput
		if d, ok := sharing.ShareDetail(want, cand.State, pos); ok {
			res.Kind = HitShared
			res.Matched = cand.State.Key()
			res.Rewrite = d.R.Render("s")
			for _, cond := range d.Conds {
				res.Conditions = append(res.Conditions, fmt.Sprintf("%v = %v", cond.C, cond.Want))
			}
			res.PositiveOnly = d.PositiveOnly
			return res
		}
	}
	if _, ok := c.signSplitLookup(gt, want); ok {
		lnAbs, sgnProd := SignSplitStates(want.Base)
		res.Kind = HitSign
		res.Companions = append(res.Companions, lnAbs.Key())
		if want.Op == canonical.OpProd {
			res.Companions = append(res.Companions, sgnProd.Key())
		}
		return res
	}
	if len(res.Candidates) == 0 {
		res.Reason = "cache entry holds no healthy states"
	} else {
		res.Reason = "no cached state is exact, Theorem 4.1-shareable, or sign-split reconstructible"
	}
	return res
}

// storeDerived caches a rewritten state's materialized values so repeated
// requests become exact hits. Caller holds the owning shard's mutex.
func (c *Cache) storeDerived(sh *shard, gt *GroupTable, st canonical.State, vals []float64, pos bool) {
	sh.curBytes -= gt.bytes()
	_ = gt.AddState(&CachedState{State: st, Vals: vals, PositiveInput: pos})
	sh.curBytes += gt.bytes()
}

func sameBase(a, b canonical.State) bool {
	return a.Base != nil && b.Base != nil && a.Base.String() == b.Base.String()
}

func applyScalar(fn func(float64) float64, in []float64) []float64 {
	out := make([]float64, len(in))
	for i, v := range in {
		out[i] = fn(v)
	}
	return out
}

// SignSplitStates returns the companion states that must be cached for a
// log/product-family state over a base b that is not provably positive:
// Σ ln|b| and Π sgn(b) (the paper's X̂ translation).
func SignSplitStates(base expr.Node) (lnAbs, sgnProd canonical.State) {
	absBase := expr.Simplify(&expr.Call{Name: "abs", Args: []expr.Node{base}})
	sgnBase := expr.Simplify(&expr.Call{Name: "sgn", Args: []expr.Node{base}})
	lnAbs = canonical.State{
		Op:   canonical.OpSum,
		F:    scalar.NewChain(scalar.LogP(scalar.E)),
		Base: absBase,
	}
	sgnProd = canonical.State{
		Op:   canonical.OpProd,
		F:    scalar.IdentityChain(),
		Base: sgnBase,
	}
	return lnAbs, sgnProd
}

// signSplitLookup reconstructs states from sign-split companions.
func (c *Cache) signSplitLookup(gt *GroupTable, want canonical.State) ([]float64, bool) {
	if want.Op != canonical.OpProd && want.Op != canonical.OpSum {
		return nil, false
	}
	if want.Base == nil {
		return nil, false
	}
	lnAbs, sgnProd := SignSplitStates(want.Base)
	ln, ok1 := gt.Exact(lnAbs.Key())
	sg, ok2 := gt.Exact(sgnProd.Key())
	if !ok1 {
		return nil, false
	}
	f := want.F.NormalizeReal()
	switch want.Op {
	case canonical.OpProd:
		// Π b = sgn-product · exp(Σ ln|b|); Π b^k likewise.
		if !ok2 {
			return nil, false
		}
		if f.IsIdentity() {
			out := make([]float64, len(ln.Vals))
			for i := range out {
				out[i] = sg.Vals[i] * math.Exp(ln.Vals[i])
			}
			return out, true
		}
	case canonical.OpSum:
		// Σ ln(b²) = 2·Σ ln|b| and other even-log shapes: f = ln ∘ b^k
		// with k even means |·| is implicit.
		if len(f.Prims) == 2 &&
			f.Prims[0].Kind == scalar.KPower &&
			f.Prims[1].Kind == scalar.KLog {
			if k, ok := coefOf(f.Prims[0]); ok && k == math.Trunc(k) && int64(k)%2 == 0 {
				out := make([]float64, len(ln.Vals))
				for i := range out {
					out[i] = k * ln.Vals[i]
				}
				return out, true
			}
		}
	}
	return nil, false
}

func coefOf(p scalar.Prim) (float64, bool) {
	v, err := scalar.CEval(p.A, nil)
	return v, err == nil
}

// CorruptEntryForTest flips a bit in every cached state's values under a
// fingerprint without updating checksums — a chaos/testing aid for the
// integrity path. An empty fingerprint corrupts every entry. It returns
// the number of states corrupted; 0 means the fingerprint is absent or
// holds no states (or only empty vectors). States are replaced by
// corrupted copies rather than mutated in place, so value slices handed
// out by earlier Lookups stay valid under the read-only contract.
func (c *Cache) CorruptEntryForTest(fp string) int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		for f, gt := range sh.entries {
			if fp != "" && f != fp {
				continue
			}
			for i, s := range gt.states {
				if len(s.Vals) == 0 {
					continue
				}
				bad := append([]float64(nil), s.Vals...)
				bad[0] = math.Float64frombits(math.Float64bits(bad[0]) ^ 1)
				gt.states[i] = &CachedState{
					State: s.State, Vals: bad,
					PositiveInput: s.PositiveInput, checksum: s.checksum,
				}
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
