package cache

import (
	"fmt"
	"math"
	"testing"

	"sudaf/internal/canonical"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/storage"
	"sudaf/internal/symbolic"
)

func mkGT(fp string, n int) *GroupTable {
	keys := make([]GroupKey, n)
	kc := storage.NewColumn("g", storage.KindInt)
	for i := 0; i < n; i++ {
		keys[i] = GroupKey{int64(i), 0}
		kc.AppendInt(int64(i))
	}
	return NewGroupTable(fp, []string{"g"}, keys, []*storage.Column{kc})
}

func st(op canonical.AggOp, base string, prims ...scalar.Prim) canonical.State {
	return canonical.State{Op: op, F: scalar.NewChain(prims...), Base: expr.MustParse(base)}
}

func TestExactHit(t *testing.T) {
	c := New(0, nil)
	gt := mkGT("fp1", 3)
	s := st(canonical.OpSum, "x", scalar.PowerP(2))
	if err := gt.AddState(&CachedState{State: s, Vals: []float64{1, 2, 3}, PositiveInput: true}); err != nil {
		t.Fatal(err)
	}
	c.Put(gt)
	vals, ok := c.Lookup("fp1", s, true)
	if !ok || vals[2] != 3 {
		t.Fatalf("exact hit failed: %v %v", vals, ok)
	}
	if c.Stats().ExactHits != 1 {
		t.Errorf("stats: %+v", c.Stats())
	}
}

func TestMissOnWrongFingerprint(t *testing.T) {
	c := New(0, nil)
	gt := mkGT("fp1", 2)
	s := st(canonical.OpSum, "x")
	_ = gt.AddState(&CachedState{State: s, Vals: []float64{1, 2}})
	c.Put(gt)
	if _, ok := c.Lookup("fp-other", s, true); ok {
		t.Fatal("lookup must respect the data fingerprint")
	}
}

func TestSharedHitViaTheorem41(t *testing.T) {
	c := New(0, symbolic.NewSpace(2))
	gt := mkGT("fp", 4)
	// Cache Σ ln x; request Π x — case 2.3, r = exp.
	lnState := st(canonical.OpSum, "x", scalar.LogP(scalar.E))
	vals := []float64{0, math.Log(2), math.Log(6), math.Log(24)}
	_ = gt.AddState(&CachedState{State: lnState, Vals: vals, PositiveInput: true})
	c.Put(gt)
	prodState := st(canonical.OpProd, "x")
	got, ok := c.Lookup("fp", prodState, true)
	if !ok {
		t.Fatal("Πx should be served from Σln x")
	}
	want := []float64{1, 2, 6, 24}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("group %d: %v, want %v", i, got[i], want[i])
		}
	}
	if c.Stats().SharedHits != 1 {
		t.Errorf("stats: %+v", c.Stats())
	}
	// Second lookup becomes an exact hit (derived state materialized).
	if _, ok := c.Lookup("fp", prodState, true); !ok {
		t.Fatal("derived state should be cached")
	}
	if c.Stats().ExactHits != 1 {
		t.Errorf("derived state not materialized: %+v", c.Stats())
	}
}

func TestNoShareAcrossBases(t *testing.T) {
	c := New(0, nil)
	gt := mkGT("fp", 2)
	_ = gt.AddState(&CachedState{State: st(canonical.OpSum, "x"), Vals: []float64{1, 2}, PositiveInput: true})
	c.Put(gt)
	if _, ok := c.Lookup("fp", st(canonical.OpSum, "y"), true); ok {
		t.Fatal("states over different base columns must not share")
	}
}

func TestSignSplitReconstruction(t *testing.T) {
	c := New(0, nil)
	gt := mkGT("fp", 2)
	lnAbs, sgnProd := SignSplitStates(expr.MustParse("x"))
	// Group 0: values {2, 3} → Σln|x| = ln6, Πsgn = 1.
	// Group 1: values {-2, 3} → Σln|x| = ln6, Πsgn = -1.
	_ = gt.AddState(&CachedState{State: lnAbs, Vals: []float64{math.Log(6), math.Log(6)}})
	_ = gt.AddState(&CachedState{State: sgnProd, Vals: []float64{1, -1}})
	c.Put(gt)
	got, ok := c.Lookup("fp", st(canonical.OpProd, "x"), false)
	if !ok {
		t.Fatal("Πx should reconstruct from sign-split companions")
	}
	if math.Abs(got[0]-6) > 1e-9 || math.Abs(got[1]+6) > 1e-9 {
		t.Errorf("got %v, want [6 -6]", got)
	}
	// Σ ln(x²) = 2Σln|x| also served.
	lnSq := st(canonical.OpSum, "x", scalar.PowerP(2), scalar.LogP(scalar.E))
	got2, ok := c.Lookup("fp", lnSq, false)
	if !ok {
		t.Fatal("Σln(x²) should reconstruct from Σln|x|")
	}
	if math.Abs(got2[0]-2*math.Log(6)) > 1e-9 {
		t.Errorf("got %v", got2)
	}
	if c.Stats().SignHits != 2 {
		t.Errorf("stats: %+v", c.Stats())
	}
}

func TestPutMergesStates(t *testing.T) {
	c := New(0, nil)
	gt1 := mkGT("fp", 2)
	_ = gt1.AddState(&CachedState{State: st(canonical.OpSum, "x"), Vals: []float64{1, 2}})
	c.Put(gt1)
	gt2 := mkGT("fp", 2)
	_ = gt2.AddState(&CachedState{State: st(canonical.OpSum, "x", scalar.PowerP(2)), Vals: []float64{1, 4}})
	c.Put(gt2)
	entry, ok := c.Entry("fp")
	if !ok || entry.NumStates() != 2 {
		t.Fatalf("merge failed: %d states", entry.NumStates())
	}
}

func TestEviction(t *testing.T) {
	c := New(4096, nil) // tiny budget
	for i := 0; i < 50; i++ {
		gt := mkGT(fmt.Sprintf("fp%d", i), 100)
		_ = gt.AddState(&CachedState{State: st(canonical.OpSum, "x"), Vals: make([]float64, 100)})
		c.Put(gt)
	}
	if c.Stats().Evictions == 0 {
		t.Error("expected evictions under a tiny budget")
	}
	// The most recent entry must survive.
	if _, ok := c.Entry("fp49"); !ok {
		t.Error("most recent entry evicted")
	}
}

func TestToTable(t *testing.T) {
	gt := mkGT("fp", 3)
	_ = gt.AddState(&CachedState{State: st(canonical.OpSum, "x"), Vals: []float64{1, 2, 3}})
	_ = gt.AddState(&CachedState{State: canonical.State{Op: canonical.OpCount, Base: &expr.Num{Val: 1}}, Vals: []float64{10, 20, 30}})
	tbl := gt.ToTable("v1", func(i int, s *CachedState) string { return fmt.Sprintf("s%d", i+1) })
	if tbl.NumRows() != 3 || tbl.Col("s1") == nil || tbl.Col("s2") == nil || tbl.Col("g") == nil {
		t.Fatalf("bad view table: %v rows, cols %v", tbl.NumRows(), tbl.ColumnNames())
	}
	if tbl.Col("s2").F[1] != 20 {
		t.Errorf("state column misaligned")
	}
}

func TestAddStateLengthMismatch(t *testing.T) {
	gt := mkGT("fp", 3)
	err := gt.AddState(&CachedState{State: st(canonical.OpSum, "x"), Vals: []float64{1}})
	if err == nil {
		t.Fatal("expected length mismatch error")
	}
}
