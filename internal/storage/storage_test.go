package storage

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"
)

func sample(t *testing.T) *Table {
	t.Helper()
	tbl := NewTable("t",
		NewColumn("id", KindInt),
		NewColumn("v", KindFloat),
		NewColumn("tag", KindString))
	for i := 0; i < 10; i++ {
		tbl.Col("id").AppendInt(int64(i))
		tbl.Col("v").AppendFloat(float64(i) * 1.5)
		tbl.Col("tag").AppendString([]string{"a", "b", "c"}[i%3])
	}
	if err := tbl.Validate(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestColumnBasics(t *testing.T) {
	tbl := sample(t)
	if tbl.NumRows() != 10 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	tag := tbl.Col("tag")
	if tag.DictSize() != 3 {
		t.Errorf("dict size = %d", tag.DictSize())
	}
	if tag.StringAt(4) != "b" {
		t.Errorf("StringAt(4) = %q", tag.StringAt(4))
	}
	if tag.Code("c") != 2 || tag.Code("zzz") != -1 {
		t.Errorf("codes: %d %d", tag.Code("c"), tag.Code("zzz"))
	}
	if tag.DictString(0) != "a" {
		t.Errorf("DictString(0) = %q", tag.DictString(0))
	}
	if tbl.Col("v").AsFloat(2) != 3.0 {
		t.Errorf("AsFloat = %v", tbl.Col("v").AsFloat(2))
	}
	if tbl.Col("id").AsInt(3) != 3 {
		t.Errorf("AsInt = %v", tbl.Col("id").AsInt(3))
	}
	if tbl.Col("nope") != nil || tbl.HasColumn("nope") {
		t.Error("missing column should be nil")
	}
	names := tbl.ColumnNames()
	if strings.Join(names, ",") != "id,v,tag" {
		t.Errorf("names = %v", names)
	}
}

func TestStats(t *testing.T) {
	tbl := sample(t)
	min, max := tbl.Col("v").Stats()
	if min != 0 || max != 13.5 {
		t.Errorf("stats = %v %v", min, max)
	}
	smin, smax := tbl.Col("tag").Stats()
	if smin != 0 || smax != 0 {
		t.Errorf("string stats = %v %v", smin, smax)
	}
	// Cached: second call returns the same values.
	min2, _ := tbl.Col("v").Stats()
	if min2 != min {
		t.Error("stats not cached")
	}
}

func TestRenamed(t *testing.T) {
	tbl := sample(t)
	r := tbl.Col("tag").Renamed("alias")
	if r.Name != "alias" || r.StringAt(0) != "a" || r.Len() != 10 {
		t.Errorf("renamed: %+v", r)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := sample(t)
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV("back", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != tbl.NumRows() {
		t.Fatalf("rows = %d", back.NumRows())
	}
	for i := 0; i < 10; i++ {
		if back.Col("id").I[i] != tbl.Col("id").I[i] {
			t.Fatalf("id row %d", i)
		}
		if math.Abs(back.Col("v").F[i]-tbl.Col("v").F[i]) > 1e-9 {
			t.Fatalf("v row %d: %v vs %v", i, back.Col("v").F[i], tbl.Col("v").F[i])
		}
		if back.Col("tag").StringAt(i) != tbl.Col("tag").StringAt(i) {
			t.Fatalf("tag row %d", i)
		}
	}
	// Kinds preserved through the typed header.
	if back.Col("id").Kind != KindInt || back.Col("tag").Kind != KindString {
		t.Error("kinds lost")
	}
}

func TestCSVFiles(t *testing.T) {
	tbl := sample(t)
	path := filepath.Join(t.TempDir(), "t.csv")
	if err := tbl.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile("t2", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "t2" || back.NumRows() != 10 {
		t.Fatalf("%s %d", back.Name, back.NumRows())
	}
}

func TestCSVErrors(t *testing.T) {
	if _, err := ReadCSV("x", strings.NewReader("a:int\nnotanint\n")); err == nil {
		t.Error("bad int should fail")
	}
	if _, err := ReadCSV("x", strings.NewReader("a:weird\n1\n")); err == nil {
		t.Error("bad kind should fail")
	}
	if _, err := LoadCSVFile("x", "/nonexistent/file.csv"); err == nil {
		t.Error("missing file should fail")
	}
}

func TestValidateMismatch(t *testing.T) {
	tbl := NewTable("bad", NewColumn("a", KindInt), NewColumn("b", KindInt))
	tbl.Col("a").AppendInt(1)
	if err := tbl.Validate(); err == nil {
		t.Error("ragged table should fail validation")
	}
}

func TestDuplicateColumnError(t *testing.T) {
	// NewTable records the duplicate as a deferred error instead of
	// panicking; Err/Validate surface it, and the bad column is dropped.
	tbl := NewTable("d", NewColumn("a", KindInt), NewColumn("a", KindFloat))
	if tbl.Err() == nil {
		t.Error("expected deferred error on duplicate column")
	}
	if err := tbl.Validate(); err == nil {
		t.Error("Validate should surface the duplicate-column error")
	}
	if got := len(tbl.Cols); got != 1 {
		t.Errorf("duplicate column should not be added, got %d cols", got)
	}

	t2 := NewTable("ok", NewColumn("a", KindInt))
	if err := t2.AddColumn(NewColumn("a", KindFloat)); err == nil {
		t.Error("AddColumn should reject a duplicate name")
	}
	if err := t2.AddColumn(NewColumn("b", KindFloat)); err != nil {
		t.Errorf("distinct column rejected: %v", err)
	}
}

func TestValueString(t *testing.T) {
	tbl := sample(t)
	if tbl.Col("id").ValueString(3) != "3" {
		t.Errorf("int: %q", tbl.Col("id").ValueString(3))
	}
	if tbl.Col("tag").ValueString(0) != "a" {
		t.Errorf("string: %q", tbl.Col("tag").ValueString(0))
	}
	if tbl.Col("v").ValueString(1) != "1.5" {
		t.Errorf("float: %q", tbl.Col("v").ValueString(1))
	}
}
