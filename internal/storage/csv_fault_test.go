package storage

import (
	"strings"
	"testing"
)

const faultyCSV = "id:int,v:float,tag:string\n" +
	"1,1.5,a\n" +
	"2,not-a-number,b\n" + // line 3: bad float
	"3,3.5\n" + // line 4: short row
	"4,4.5,d\n"

func TestCSVMalformedRowError(t *testing.T) {
	_, err := ReadCSV("x", strings.NewReader(faultyCSV))
	if err == nil {
		t.Fatal("malformed row should fail the load")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Errorf("error should carry the line number: %v", err)
	}
	if !strings.Contains(err.Error(), "column v") {
		t.Errorf("error should name the column: %v", err)
	}
}

func TestCSVShortRowError(t *testing.T) {
	csv := "id:int,v:float\n1,1.5\n2\n"
	_, err := ReadCSV("x", strings.NewReader(csv))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("short row should fail with its line number: %v", err)
	}
}

func TestCSVSkipBadRows(t *testing.T) {
	tbl, skipped, err := ReadCSVWith("x", strings.NewReader(faultyCSV), CSVOptions{SkipBadRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 {
		t.Errorf("skipped = %d, want 2", skipped)
	}
	if tbl.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", tbl.NumRows())
	}
	// Good rows are intact and aligned — no half-applied bad rows.
	if err := tbl.Validate(); err != nil {
		t.Errorf("skip-and-count left a ragged table: %v", err)
	}
	if tbl.Col("id").I[0] != 1 || tbl.Col("id").I[1] != 4 {
		t.Errorf("ids: %v", tbl.Col("id").I)
	}
	if tbl.Col("v").F[1] != 4.5 || tbl.Col("tag").StringAt(1) != "d" {
		t.Errorf("row 4 mangled: v=%v tag=%q", tbl.Col("v").F[1], tbl.Col("tag").StringAt(1))
	}
}

func TestCSVBadRowLeavesNoPartialRow(t *testing.T) {
	// A row whose *last* field is bad must not leave earlier fields
	// appended (strict mode errors; skip mode drops the whole row).
	csv := "a:float,b:float\n1,2\n3,oops\n"
	tbl, skipped, err := ReadCSVWith("x", strings.NewReader(csv), CSVOptions{SkipBadRows: true})
	if err != nil || skipped != 1 {
		t.Fatalf("err=%v skipped=%d", err, skipped)
	}
	if len(tbl.Col("a").F) != 1 || len(tbl.Col("b").F) != 1 {
		t.Errorf("partial row committed: a=%v b=%v", tbl.Col("a").F, tbl.Col("b").F)
	}
}
