package storage

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// ---- Stats sentinels (empty / all-NaN / single-row columns) ----

func TestStatsFullEmptyColumn(t *testing.T) {
	c := NewColumn("x", KindFloat)
	min, max, hasNaN := c.StatsFull()
	if !math.IsInf(min, 1) || !math.IsInf(max, -1) {
		t.Fatalf("empty column stats = (%v, %v), want (+Inf, -Inf) sentinels", min, max)
	}
	if hasNaN {
		t.Fatal("empty column reports hasNaN")
	}
}

func TestStatsFullAllNaN(t *testing.T) {
	c := NewColumn("x", KindFloat)
	for i := 0; i < 5; i++ {
		c.AppendFloat(math.NaN())
	}
	min, max, hasNaN := c.StatsFull()
	if !math.IsInf(min, 1) || !math.IsInf(max, -1) {
		t.Fatalf("all-NaN column stats = (%v, %v), want (+Inf, -Inf) sentinels", min, max)
	}
	if !hasNaN {
		t.Fatal("all-NaN column reports hasNaN=false")
	}
}

func TestStatsFullSingleRow(t *testing.T) {
	c := NewColumn("x", KindFloat)
	c.AppendFloat(-3.5)
	min, max, hasNaN := c.StatsFull()
	if min != -3.5 || max != -3.5 || hasNaN {
		t.Fatalf("single-row stats = (%v, %v, %v), want (-3.5, -3.5, false)", min, max, hasNaN)
	}
	ci := NewColumn("k", KindInt)
	ci.AppendInt(42)
	if mn, mx := ci.Stats(); mn != 42 || mx != 42 {
		t.Fatalf("single-row int stats = (%v, %v), want (42, 42)", mn, mx)
	}
}

func TestStatsFullMixedNaN(t *testing.T) {
	c := NewColumn("x", KindFloat)
	for _, v := range []float64{math.NaN(), 2, math.NaN(), -7, 5} {
		c.AppendFloat(v)
	}
	min, max, hasNaN := c.StatsFull()
	if min != -7 || max != 5 || !hasNaN {
		t.Fatalf("stats = (%v, %v, %v), want (-7, 5, true)", min, max, hasNaN)
	}
	// Cached path returns the same answer.
	min2, max2, nan2 := c.StatsFull()
	if min2 != min || max2 != max || nan2 != hasNaN {
		t.Fatal("cached StatsFull disagrees with first computation")
	}
}

// ---- Partition / Slice degenerate cases ----

// checkPartition asserts the Partition contract: ranges in order, each
// lo <= hi, contiguous, covering [0, NumRows()) exactly.
func checkPartition(t *testing.T, tbl *Table, n int) [][2]int {
	t.Helper()
	parts := tbl.Partition(n)
	if len(parts) != maxInt(n, 1) {
		t.Fatalf("Partition(%d) returned %d ranges", n, len(parts))
	}
	prev := 0
	for i, p := range parts {
		if p[0] != prev {
			t.Fatalf("range %d starts at %d, want %d (gap/overlap)", i, p[0], prev)
		}
		if p[1] < p[0] {
			t.Fatalf("range %d inverted: %v", i, p)
		}
		prev = p[1]
	}
	if prev != tbl.NumRows() {
		t.Fatalf("ranges end at %d, want %d", prev, tbl.NumRows())
	}
	return parts
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestPartitionMoreShardsThanRows(t *testing.T) {
	tbl := NewTable("t", NewColumn("x", KindFloat))
	for i := 0; i < 3; i++ {
		tbl.Col("x").AppendFloat(float64(i))
	}
	tbl.Seal()
	parts := checkPartition(t, tbl, 8)
	nonEmpty := 0
	for _, p := range parts {
		if p[1] > p[0] {
			nonEmpty++
		}
	}
	if nonEmpty == 0 {
		t.Fatal("no non-empty ranges for a 3-row table")
	}
}

func TestPartitionZeroRowTable(t *testing.T) {
	tbl := NewTable("t", NewColumn("x", KindFloat))
	tbl.Seal()
	for _, n := range []int{1, 2, 7} {
		parts := checkPartition(t, tbl, n)
		for i, p := range parts {
			if p[0] != 0 || p[1] != 0 {
				t.Fatalf("n=%d: range %d = %v, want [0,0]", n, i, p)
			}
		}
	}
}

func TestPartitionZeroAndNegativeN(t *testing.T) {
	tbl := NewTable("t", NewColumn("x", KindInt))
	tbl.Col("x").AppendInt(1)
	tbl.Seal()
	for _, n := range []int{0, -3} {
		parts := tbl.Partition(n)
		if len(parts) != 1 || parts[0] != [2]int{0, 1} {
			t.Fatalf("Partition(%d) = %v, want [[0 1]]", n, parts)
		}
	}
}

func TestSliceEmptyWindow(t *testing.T) {
	tbl := NewTable("t",
		NewColumn("x", KindFloat),
		NewColumn("s", KindString))
	for i := 0; i < 10; i++ {
		tbl.Col("x").AppendFloat(float64(i))
		tbl.Col("s").AppendString("a")
	}
	tbl.Seal()
	for _, lohi := range [][2]int{{0, 0}, {5, 5}, {10, 10}} {
		v := tbl.Slice(lohi[0], lohi[1])
		if v.NumRows() != 0 {
			t.Fatalf("Slice(%d,%d).NumRows() = %d, want 0", lohi[0], lohi[1], v.NumRows())
		}
		if err := v.Validate(); err != nil {
			t.Fatalf("empty slice invalid: %v", err)
		}
		// Stats on an empty view must report sentinels, not stale parent stats.
		if mn, mx := v.Col("x").Stats(); !math.IsInf(mn, 1) || !math.IsInf(mx, -1) {
			t.Fatalf("empty view stats = (%v, %v)", mn, mx)
		}
	}
}

func TestSliceOfZeroRowTable(t *testing.T) {
	tbl := NewTable("t", NewColumn("x", KindInt))
	tbl.Seal()
	v := tbl.Slice(0, 0)
	if v.NumRows() != 0 {
		t.Fatalf("NumRows = %d", v.NumRows())
	}
}

func TestSliceCarriesEncodings(t *testing.T) {
	tbl := NewTable("t", NewColumn("x", KindInt))
	for i := 0; i < 4096; i++ {
		tbl.Col("x").AppendInt(int64(i / 512)) // long runs
	}
	tbl.Segments = []int{1024, 2048, 4096}
	tbl.Seal()
	full := tbl.Col("x").EncodedSegments()
	if len(full) == 0 {
		t.Fatal("no encodings built at Seal")
	}
	// A slice aligned on segment bounds keeps the inner segments, rebased.
	v := tbl.Slice(1024, 4096)
	got := v.Col("x").EncodedSegments()
	if len(got) != 2 {
		t.Fatalf("aligned slice kept %d encoded segments, want 2", len(got))
	}
	if got[0].Lo != 0 || got[0].Hi != 1024 {
		t.Fatalf("first kept segment = [%d,%d), want rebased [0,1024)", got[0].Lo, got[0].Hi)
	}
	// A misaligned slice drops partially-covered segments.
	v2 := tbl.Slice(100, 1500)
	for _, es := range v2.Col("x").EncodedSegments() {
		if es.Lo < 0 || es.Hi > v2.NumRows() {
			t.Fatalf("segment [%d,%d) out of view bounds [0,%d)", es.Lo, es.Hi, v2.NumRows())
		}
	}
}

// ---- CSV round-trip fidelity ----

func TestCSVRoundTripSpecialFloats(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1), // ±0
		math.NaN(),
		math.Inf(1), math.Inf(-1),
		math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		1.0 / 3.0, 0.1, -1e-300,
		1e15, 1e15 - 1, -(1e15 + 17), // around the integer-format cutoff
		123456789.123456789,
	}
	tbl := NewTable("sp", NewColumn("v", KindFloat), NewColumn("k", KindInt))
	for i, v := range specials {
		tbl.Col("v").AppendFloat(v)
		tbl.Col("k").AppendInt(int64(i) - 3)
	}
	path := filepath.Join(t.TempDir(), "sp.csv")
	if err := tbl.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile("sp", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != len(specials) {
		t.Fatalf("rows = %d, want %d", back.NumRows(), len(specials))
	}
	for i, want := range specials {
		got := back.Col("v").AsFloat(i)
		if math.Float64bits(got) != math.Float64bits(want) {
			// NaN payloads are not preserved by the "NaN" token; any NaN is fine.
			if math.IsNaN(got) && math.IsNaN(want) {
				continue
			}
			t.Errorf("row %d: %v (%#x) round-tripped to %v (%#x)",
				i, want, math.Float64bits(want), got, math.Float64bits(got))
		}
	}
	for i := range specials {
		if got, want := back.Col("k").AsInt(i), int64(i)-3; got != want {
			t.Errorf("int row %d: %d != %d", i, got, want)
		}
	}
}

// TestCSVRoundTripProperty: random bit patterns survive a CSV
// round-trip bit-for-bit (NaNs may canonicalize their payload).
func TestCSVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tbl := NewTable("rt", NewColumn("v", KindFloat))
	var want []float64
	for i := 0; i < 2000; i++ {
		var v float64
		switch rng.Intn(3) {
		case 0: // arbitrary bit pattern (subnormals, NaNs, infs included)
			v = math.Float64frombits(rng.Uint64())
		case 1: // "ordinary" value
			v = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(40)-20))
		default: // integral value around the formatting cutoff
			v = float64(rng.Int63n(1<<53)) - float64(rng.Int63n(1<<53))
		}
		want = append(want, v)
		tbl.Col("v").AppendFloat(v)
	}
	path := filepath.Join(t.TempDir(), "rt.csv")
	if err := tbl.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSVFile("rt", path)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		g := back.Col("v").AsFloat(i)
		if math.IsNaN(w) && math.IsNaN(g) {
			continue
		}
		if math.Float64bits(g) != math.Float64bits(w) {
			t.Fatalf("row %d: %#x round-tripped to %#x (%v vs %v)",
				i, math.Float64bits(w), math.Float64bits(g), w, g)
		}
	}
}

func TestFormatFloatNegativeZero(t *testing.T) {
	c := NewColumn("v", KindFloat)
	c.AppendFloat(math.Copysign(0, -1))
	s := c.ValueString(0)
	if s != "-0" {
		t.Fatalf("ValueString(-0.0) = %q, want \"-0\"", s)
	}
}
