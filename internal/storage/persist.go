package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
)

// Persistent segment format ("SDF2"): a versioned header followed by
// per-column blocks, one block per sealed segment, each stored in its
// in-heap encoding (RLE runs, FOR-packed deltas, or raw values). Load
// rebuilds the dense arrays block by block and re-attaches the stored
// encodings directly, so a reloaded table behaves exactly like the one
// that was saved — same epoch, same segments, same encoded fast paths —
// which is what lets cache fingerprints (and therefore warm Theorem 4.1
// sharing) survive a restart.
//
// The decoder trusts nothing: every count is bounds-checked against the
// remaining input before allocation, and corrupt or truncated input
// returns an error wrapping ErrCorruptSegment — never a panic (the
// fuzz target feeds it arbitrary bytes).

// ErrCorruptSegment is wrapped by every decode error.
var ErrCorruptSegment = errors.New("storage: corrupt segment file")

var segMagic = [4]byte{'S', 'D', 'F', '2'}

const segVersion = 1

// SegFileExt is the on-disk extension for persisted tables.
const SegFileExt = ".seg"

// ---- encoder ----

type segWriter struct {
	buf []byte
}

func (w *segWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *segWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *segWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *segWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// EncodeTable serializes a sealed table into the SDF2 format.
func EncodeTable(t *Table) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	w := &segWriter{buf: make([]byte, 0, 1<<16)}
	w.buf = append(w.buf, segMagic[:]...)
	w.u8(segVersion)
	w.str(t.Name)
	w.u64(uint64(t.Epoch))
	segs := t.Segments
	if len(segs) == 0 {
		segs = []int{t.NumRows()}
	}
	w.u32(uint32(len(segs)))
	for _, s := range segs {
		w.u64(uint64(s))
	}
	w.u32(uint32(len(t.Cols)))
	for _, c := range t.Cols {
		if err := encodeColumn(w, c, segs); err != nil {
			return nil, err
		}
	}
	return w.buf, nil
}

func encodeColumn(w *segWriter, c *Column, segs []int) error {
	w.str(c.Name)
	w.u8(uint8(c.Kind))
	if c.Kind == KindString {
		w.u32(uint32(len(c.dict)))
		for _, s := range c.dict {
			w.str(s)
		}
	}
	w.u32(uint32(len(segs)))
	lo := 0
	for _, end := range segs {
		if end < lo || end > c.Len() {
			return fmt.Errorf("storage: table segment boundary %d outside column %s (%d rows)", end, c.Name, c.Len())
		}
		encodeBlock(w, c, lo, end)
		lo = end
	}
	return nil
}

// blockEncodingFor finds the column's encoding for exactly [lo, hi), or
// nil (raw block).
func blockEncodingFor(c *Column, lo, hi int) *Encoding {
	for _, s := range c.encs {
		if s.Lo == lo && s.Hi == hi && s.Enc != nil {
			return s.Enc
		}
	}
	return nil
}

func encodeBlock(w *segWriter, c *Column, lo, hi int) {
	enc := blockEncodingFor(c, lo, hi)
	kind := EncNone
	integral, maxAbs := true, 0.0
	if enc != nil {
		kind, integral, maxAbs = enc.Kind, enc.Integral, enc.MaxAbs
	}
	w.u8(uint8(kind))
	w.u32(uint32(hi - lo))
	if kind == EncNone {
		// Stats may be unknown (tiny segment, no encoding built): mark
		// integral=false so a loaded stats-only segment never over-claims.
		if enc == nil {
			integral = false
		}
	}
	if integral {
		w.u8(1)
	} else {
		w.u8(0)
	}
	w.u64(math.Float64bits(maxAbs))
	switch kind {
	case EncRLE:
		w.u32(uint32(len(enc.RunEnds)))
		for _, e := range enc.RunEnds {
			w.u32(uint32(e))
		}
		switch c.Kind {
		case KindFloat:
			for _, v := range enc.RunVals {
				w.u64(math.Float64bits(v))
			}
		case KindInt:
			for _, v := range enc.RunValsI {
				w.u64(uint64(v))
			}
		default:
			for _, v := range enc.RunValsC {
				w.u32(uint32(v))
			}
		}
	case EncFOR:
		w.u64(uint64(enc.ForBase))
		w.u8(enc.ForWidth)
		w.u32(uint32(len(enc.Packed)))
		for _, v := range enc.Packed {
			w.u64(v)
		}
	default: // raw values
		switch c.Kind {
		case KindFloat:
			for _, v := range c.F[lo:hi] {
				w.u64(math.Float64bits(v))
			}
		case KindInt:
			for _, v := range c.I[lo:hi] {
				w.u64(uint64(v))
			}
		default:
			for _, v := range c.Codes[lo:hi] {
				w.u32(uint32(v))
			}
		}
	}
}

// ---- decoder ----

type segReader struct {
	buf []byte
	pos int
}

func (r *segReader) fail(format string, args ...any) error {
	return fmt.Errorf("%w: offset %d: %s", ErrCorruptSegment, r.pos, fmt.Sprintf(format, args...))
}

func (r *segReader) need(n int) error {
	if n < 0 || r.pos+n > len(r.buf) || r.pos+n < r.pos {
		return r.fail("need %d bytes, %d left", n, len(r.buf)-r.pos)
	}
	return nil
}

func (r *segReader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.buf[r.pos]
	r.pos++
	return v, nil
}

func (r *segReader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *segReader) u64() (uint64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.buf[r.pos:])
	r.pos += 8
	return v, nil
}

func (r *segReader) str(maxLen int) (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if int(n) > maxLen {
		return "", r.fail("string length %d exceeds cap %d", n, maxLen)
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}

// count reads a u32 count and rejects values that could not possibly
// fit in the remaining input at minBytes per element (the allocation
// guard against corrupt headers).
func (r *segReader) count(minBytes int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if minBytes > 0 && int(n) > (len(r.buf)-r.pos)/minBytes {
		return 0, r.fail("count %d exceeds remaining input", n)
	}
	return int(n), nil
}

// DecodeTable parses a SDF2-encoded table. The returned table is sealed,
// carries the saved epoch and segment boundaries, and has its encodings
// re-attached. Any structural problem returns an error wrapping
// ErrCorruptSegment; DecodeTable never panics on malformed input.
func DecodeTable(data []byte) (t *Table, err error) {
	// Defense in depth for the never-panic contract: a decoder bug on
	// adversarial input surfaces as a typed error, not a crash.
	defer func() {
		if rec := recover(); rec != nil {
			t, err = nil, fmt.Errorf("%w: decode panic: %v", ErrCorruptSegment, rec)
		}
	}()
	r := &segReader{buf: data}
	if err := r.need(5); err != nil {
		return nil, err
	}
	if [4]byte(data[:4]) != segMagic {
		return nil, r.fail("bad magic %q", data[:4])
	}
	r.pos = 4
	ver, _ := r.u8()
	if ver != segVersion {
		return nil, r.fail("unsupported version %d", ver)
	}
	name, err := r.str(1 << 16)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, r.fail("empty table name")
	}
	epochU, err := r.u64()
	if err != nil {
		return nil, err
	}
	epoch := int64(epochU)
	if epoch < 0 {
		return nil, r.fail("negative epoch")
	}
	nSegs, err := r.count(8)
	if err != nil {
		return nil, err
	}
	if nSegs == 0 {
		return nil, r.fail("no segments")
	}
	segs := make([]int, nSegs)
	prev := int64(0)
	for i := range segs {
		v, err := r.u64()
		if err != nil {
			return nil, err
		}
		if int64(v) < prev || v > math.MaxInt32 {
			return nil, r.fail("segment boundary %d not increasing or too large", v)
		}
		prev = int64(v)
		segs[i] = int(v)
	}
	numRows := segs[len(segs)-1]
	nCols, err := r.count(6)
	if err != nil {
		return nil, err
	}
	t = &Table{Name: name, byName: map[string]int{}, Epoch: epoch, Segments: segs}
	for i := 0; i < nCols; i++ {
		c, err := decodeColumn(r, segs, numRows)
		if err != nil {
			return nil, err
		}
		if err := t.AddColumn(c); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptSegment, err)
		}
	}
	if r.pos != len(r.buf) {
		return nil, r.fail("%d trailing bytes", len(r.buf)-r.pos)
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptSegment, err)
	}
	t.Seal() // encodings are pre-attached; Seal only flips the flags
	return t, nil
}

func decodeColumn(r *segReader, segs []int, numRows int) (*Column, error) {
	name, err := r.str(1 << 16)
	if err != nil {
		return nil, err
	}
	if name == "" {
		return nil, r.fail("empty column name")
	}
	kindU, err := r.u8()
	if err != nil {
		return nil, err
	}
	kind := Kind(kindU)
	if kind != KindFloat && kind != KindInt && kind != KindString {
		return nil, r.fail("column %s: bad kind %d", name, kindU)
	}
	c := NewColumn(name, kind)
	if kind == KindString {
		nDict, err := r.count(4)
		if err != nil {
			return nil, err
		}
		c.dict = make([]string, 0, nDict)
		for i := 0; i < nDict; i++ {
			s, err := r.str(1 << 24)
			if err != nil {
				return nil, err
			}
			if _, dup := c.index[s]; dup {
				return nil, r.fail("column %s: duplicate dict entry", name)
			}
			c.index[s] = int32(len(c.dict))
			c.dict = append(c.dict, s)
		}
	}
	nBlocks, err := r.count(14)
	if err != nil {
		return nil, err
	}
	if nBlocks != len(segs) {
		return nil, r.fail("column %s: %d blocks for %d segments", name, nBlocks, len(segs))
	}
	lo := 0
	for _, end := range segs {
		if err := decodeBlock(r, c, lo, end); err != nil {
			return nil, err
		}
		lo = end
	}
	if c.Len() != numRows {
		return nil, r.fail("column %s: %d rows decoded, want %d", name, c.Len(), numRows)
	}
	return c, nil
}

func decodeBlock(r *segReader, c *Column, lo, hi int) error {
	kindU, err := r.u8()
	if err != nil {
		return err
	}
	rows, err := r.u32()
	if err != nil {
		return err
	}
	if int(rows) != hi-lo {
		return r.fail("block rows %d, want %d", rows, hi-lo)
	}
	integralU, err := r.u8()
	if err != nil {
		return err
	}
	maxAbsBits, err := r.u64()
	if err != nil {
		return err
	}
	integral, maxAbs := integralU == 1, math.Float64frombits(maxAbsBits)
	n := hi - lo
	switch EncodingKind(kindU) {
	case EncRLE:
		nRuns, err := r.count(4)
		if err != nil {
			return err
		}
		if nRuns == 0 || nRuns > n {
			return r.fail("bad run count %d for %d rows", nRuns, n)
		}
		e := &Encoding{Kind: EncRLE, NumRows: n, Integral: integral, MaxAbs: maxAbs,
			RunEnds: make([]int32, nRuns)}
		prev := int32(0)
		for i := range e.RunEnds {
			v, err := r.u32()
			if err != nil {
				return err
			}
			if int32(v) <= prev || int(v) > n {
				return r.fail("run end %d not increasing within %d rows", v, n)
			}
			prev = int32(v)
			e.RunEnds[i] = int32(v)
		}
		if int(prev) != n {
			return r.fail("runs cover %d of %d rows", prev, n)
		}
		switch c.Kind {
		case KindFloat:
			if err := r.need(8 * nRuns); err != nil {
				return err
			}
			e.RunVals = make([]float64, nRuns)
			start := 0
			for i := range e.RunVals {
				bits, _ := r.u64()
				v := math.Float64frombits(bits)
				e.RunVals[i] = v
				for j := start; j < int(e.RunEnds[i]); j++ {
					c.F = append(c.F, v)
				}
				start = int(e.RunEnds[i])
			}
		case KindInt:
			if err := r.need(8 * nRuns); err != nil {
				return err
			}
			e.RunValsI = make([]int64, nRuns)
			start := 0
			for i := range e.RunValsI {
				u, _ := r.u64()
				v := int64(u)
				e.RunValsI[i] = v
				for j := start; j < int(e.RunEnds[i]); j++ {
					c.I = append(c.I, v)
				}
				start = int(e.RunEnds[i])
			}
		default:
			if err := r.need(4 * nRuns); err != nil {
				return err
			}
			e.RunValsC = make([]int32, nRuns)
			start := 0
			for i := range e.RunValsC {
				u, _ := r.u32()
				v := int32(u)
				if v < 0 || int(v) >= len(c.dict) {
					return r.fail("dict code %d out of range %d", v, len(c.dict))
				}
				e.RunValsC[i] = v
				for j := start; j < int(e.RunEnds[i]); j++ {
					c.Codes = append(c.Codes, v)
				}
				start = int(e.RunEnds[i])
			}
		}
		c.encs = append(c.encs, EncSeg{Lo: lo, Hi: hi, Enc: e})
	case EncFOR:
		if c.Kind != KindInt {
			return r.fail("FOR block on %s column", c.Kind)
		}
		baseU, err := r.u64()
		if err != nil {
			return err
		}
		width, err := r.u8()
		if err != nil {
			return err
		}
		if width == 0 || width > forMaxWidth {
			return r.fail("bad FOR width %d", width)
		}
		nWords, err := r.count(8)
		if err != nil {
			return err
		}
		if need := (n*int(width) + 63) / 64; nWords != need {
			return r.fail("FOR words %d, want %d", nWords, need)
		}
		e := &Encoding{Kind: EncFOR, NumRows: n, Integral: integral, MaxAbs: maxAbs,
			ForBase: int64(baseU), ForWidth: width, Packed: make([]uint64, nWords)}
		for i := range e.Packed {
			v, err := r.u64()
			if err != nil {
				return err
			}
			e.Packed[i] = v
		}
		// Decode into the dense array batch-at-a-time.
		start := len(c.I)
		c.I = append(c.I, make([]int64, n)...)
		e.DecodeInto(0, n, nil, c.I[start:start+n], nil)
		c.encs = append(c.encs, EncSeg{Lo: lo, Hi: hi, Enc: e})
	case EncNone:
		switch c.Kind {
		case KindFloat:
			if err := r.need(8 * n); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				bits, _ := r.u64()
				c.F = append(c.F, math.Float64frombits(bits))
			}
		case KindInt:
			if err := r.need(8 * n); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				u, _ := r.u64()
				c.I = append(c.I, int64(u))
			}
		default:
			if err := r.need(4 * n); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				u, _ := r.u32()
				v := int32(u)
				if v < 0 || int(v) >= len(c.dict) {
					return r.fail("dict code %d out of range %d", v, len(c.dict))
				}
				c.Codes = append(c.Codes, v)
			}
		}
		if integral || maxAbs != 0 {
			c.encs = append(c.encs, EncSeg{Lo: lo, Hi: hi,
				Enc: &Encoding{Kind: EncNone, NumRows: n, Integral: integral, MaxAbs: maxAbs}})
		} else {
			// No stats were saved: attach a stats-only summary so the
			// encoding list stays contiguous for later appends.
			c.encs = append(c.encs, EncSeg{Lo: lo, Hi: hi, Enc: statsOnlySegment(c, lo, hi)})
		}
	default:
		return r.fail("bad block encoding %d", kindU)
	}
	return nil
}

// ---- file helpers ----

// SaveSegFile writes the table to path atomically (tmp + rename).
func (t *Table) SaveSegFile(path string) error {
	data, err := EncodeTable(t)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadSegFile reads a table saved by SaveSegFile and raises the global
// epoch counter past the loaded epoch.
func LoadSegFile(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	t, err := DecodeTable(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	EnsureEpochAtLeast(t.Epoch)
	return t, nil
}
