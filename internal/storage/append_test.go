package storage

import (
	"math"
	"testing"
)

// TestStatsInvalidatedByGrowth pins the stale-stats bug: Stats() used to
// be memoized with sync.Once, so a column that grew after the first call
// kept reporting the old (min, max) forever — and the executor sized its
// dense group-key table from them.
func TestStatsInvalidatedByGrowth(t *testing.T) {
	c := NewColumn("k", KindInt)
	c.AppendInt(5)
	if min, max := c.Stats(); min != 5 || max != 5 {
		t.Fatalf("stats = (%v, %v), want (5, 5)", min, max)
	}
	for i := int64(0); i < 300; i++ {
		c.AppendInt(i)
	}
	if min, max := c.Stats(); min != 0 || max != 299 {
		t.Fatalf("stats after growth = (%v, %v), want (0, 299)", min, max)
	}
	// Repeated calls at a stable length serve the cache (same values).
	if min, max := c.Stats(); min != 0 || max != 299 {
		t.Fatalf("cached stats = (%v, %v), want (0, 299)", min, max)
	}
}

// TestStatsEmptyColumn: an empty numeric column reports (+Inf, -Inf) —
// the sentinel the executor's integer-domain guard must handle.
func TestStatsEmptyColumn(t *testing.T) {
	for _, kind := range []Kind{KindInt, KindFloat} {
		c := NewColumn("k", kind)
		min, max := c.Stats()
		if !math.IsInf(min, 1) || !math.IsInf(max, -1) {
			t.Fatalf("%v empty stats = (%v, %v), want (+Inf, -Inf)", kind, min, max)
		}
	}
}

func TestSealedColumnRejectsInPlaceAppend(t *testing.T) {
	tbl := sample(t)
	tbl.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("append to sealed column did not panic")
		}
	}()
	tbl.Col("id").AppendInt(99)
}

func makeDelta(ids []int64, vs []float64, tags []string) *Table {
	d := NewTable("t",
		NewColumn("id", KindInt),
		NewColumn("v", KindFloat),
		NewColumn("tag", KindString))
	for i := range ids {
		d.Col("id").AppendInt(ids[i])
		d.Col("v").AppendFloat(vs[i])
		d.Col("tag").AppendString(tags[i])
	}
	return d
}

// TestAppendRowsVersioning: AppendRows builds a successor version whose
// readers see old+delta while holders of the old version see exactly the
// rows they pinned, including the dictionary prefix of string columns.
func TestAppendRowsVersioning(t *testing.T) {
	v1 := sample(t)
	v1.Seal()
	v1.Epoch = NextEpoch()
	oldRows, oldDict := v1.NumRows(), v1.Col("tag").DictSize()

	v2, err := v1.AppendRows(makeDelta(
		[]int64{100, 101}, []float64{-1, -2}, []string{"b", "zebra"}))
	if err != nil {
		t.Fatal(err)
	}
	if v2.NumRows() != oldRows+2 {
		t.Fatalf("v2 rows = %d, want %d", v2.NumRows(), oldRows+2)
	}
	if v2.Epoch == v1.Epoch || v2.Epoch == 0 {
		t.Fatalf("epochs: v1=%d v2=%d", v1.Epoch, v2.Epoch)
	}
	if len(v2.Segments) != 2 || v2.Segments[0] != oldRows || v2.Segments[1] != oldRows+2 {
		t.Fatalf("segments = %v", v2.Segments)
	}
	// Old version pinned: same row count, same dict.
	if v1.NumRows() != oldRows {
		t.Fatalf("v1 grew to %d rows", v1.NumRows())
	}
	if v1.Col("tag").DictSize() != oldDict {
		t.Fatalf("v1 dict grew to %d", v1.Col("tag").DictSize())
	}
	// Codes are prefix-stable: existing strings keep their code in v2, so
	// group keys computed against either version line up.
	if v2.Col("tag").Code("b") != v1.Col("tag").Code("b") {
		t.Fatal("existing string changed code across versions")
	}
	if v2.Col("tag").StringAt(oldRows+1) != "zebra" {
		t.Fatalf("new string decodes to %q", v2.Col("tag").StringAt(oldRows+1))
	}
	if got := v2.Col("id").I[oldRows]; got != 100 {
		t.Fatalf("delta row = %d", got)
	}
	// Prefix rows are shared, not copied.
	for i := 0; i < oldRows; i++ {
		if v2.Col("v").F[i] != v1.Col("v").F[i] {
			t.Fatalf("prefix row %d differs", i)
		}
	}
}

// TestAppendRowsSiblingVersions: two successors built from the same
// parent must not clobber each other through shared spare capacity —
// tail ownership moves to the first child, so the second reallocates.
func TestAppendRowsSiblingVersions(t *testing.T) {
	v1 := sample(t)
	v1.Seal()
	n := v1.NumRows()
	a, err := v1.AppendRows(makeDelta([]int64{1000}, []float64{111}, []string{"a"}))
	if err != nil {
		t.Fatal(err)
	}
	b, err := v1.AppendRows(makeDelta([]int64{2000}, []float64{222}, []string{"b"}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Col("id").I[n] != 1000 || b.Col("id").I[n] != 2000 {
		t.Fatalf("sibling tails: a=%d b=%d", a.Col("id").I[n], b.Col("id").I[n])
	}
	if a.Col("v").F[n] != 111 || b.Col("v").F[n] != 222 {
		t.Fatalf("sibling tails: a=%v b=%v", a.Col("v").F[n], b.Col("v").F[n])
	}
}

func TestAppendRowsSchemaMismatch(t *testing.T) {
	v1 := sample(t)
	v1.Seal()
	bad := NewTable("t", NewColumn("id", KindInt))
	if _, err := v1.AppendRows(bad); err == nil {
		t.Fatal("column-count mismatch accepted")
	}
	bad2 := NewTable("t",
		NewColumn("id", KindFloat), // wrong kind
		NewColumn("v", KindFloat),
		NewColumn("tag", KindString))
	if _, err := v1.AppendRows(bad2); err == nil {
		t.Fatal("kind mismatch accepted")
	}
}

// TestViewsAreCapacityCapped: Slice and Renamed views must not be able
// to alias a successor version's tail — their slice headers are capped
// at the view's length, so appending to the parent chain reallocates
// rather than writing into storage the view can reach.
func TestViewsAreCapacityCapped(t *testing.T) {
	v1 := sample(t)
	v1.Seal()
	sl := v1.Slice(2, 7)
	rn := v1.Col("v").Renamed("w")
	for _, c := range []*Column{sl.Col("v"), rn} {
		if cap(c.F) != len(c.F) {
			t.Fatalf("view %q: cap %d > len %d", c.Name, cap(c.F), len(c.F))
		}
	}
	if cap(sl.Col("id").I) != len(sl.Col("id").I) {
		t.Fatal("int view not capped")
	}
	if cap(sl.Col("tag").Codes) != len(sl.Col("tag").Codes) {
		t.Fatal("codes view not capped")
	}
	// Views are sealed.
	defer func() {
		if recover() == nil {
			t.Fatal("append to view did not panic")
		}
	}()
	sl.Col("v").AppendFloat(1)
}
