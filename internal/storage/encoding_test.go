package storage

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// buildSealed builds and seals a single-column table with explicit
// segment boundaries.
func buildSealed(t *testing.T, col *Column, segs []int) *Table {
	t.Helper()
	tbl := NewTable("t", col)
	tbl.Segments = segs
	tbl.Seal()
	return tbl
}

// decodeAll re-materializes a column's rows through its encodings and
// compares them bit-for-bit with the dense arrays.
func decodeAll(t *testing.T, c *Column) {
	t.Helper()
	for _, es := range c.EncodedSegments() {
		if es.Enc.Kind == EncNone {
			continue
		}
		n := es.Hi - es.Lo
		switch c.Kind {
		case KindFloat:
			dst := make([]float64, n)
			es.Enc.DecodeInto(0, n, dst, nil, nil)
			for i, v := range dst {
				if math.Float64bits(v) != math.Float64bits(c.F[es.Lo+i]) {
					t.Fatalf("float seg [%d,%d) row %d: decoded %v, dense %v", es.Lo, es.Hi, i, v, c.F[es.Lo+i])
				}
			}
		case KindInt:
			dst := make([]int64, n)
			es.Enc.DecodeInto(0, n, nil, dst, nil)
			for i, v := range dst {
				if v != c.I[es.Lo+i] {
					t.Fatalf("int seg [%d,%d) row %d: decoded %d, dense %d", es.Lo, es.Hi, i, v, c.I[es.Lo+i])
				}
			}
		default:
			dst := make([]int32, n)
			es.Enc.DecodeInto(0, n, nil, nil, dst)
			for i, v := range dst {
				if v != c.Codes[es.Lo+i] {
					t.Fatalf("code seg [%d,%d) row %d: decoded %d, dense %d", es.Lo, es.Hi, i, v, c.Codes[es.Lo+i])
				}
			}
		}
	}
}

func TestEncodeDecodeRLEFloatAdversarial(t *testing.T) {
	c := NewColumn("x", KindFloat)
	// Long runs of adversarial values: NaN, ±Inf, ±0, ordinary.
	vals := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0, 3.25}
	for _, v := range vals {
		for i := 0; i < 200; i++ {
			c.AppendFloat(v)
		}
	}
	tbl := buildSealed(t, c, []int{c.Len()})
	col := tbl.Col("x")
	segs := col.EncodedSegments()
	if len(segs) != 1 || segs[0].Enc.Kind != EncRLE {
		t.Fatalf("want one RLE segment, got %+v", segs)
	}
	// ±0 and NaN runs must stay distinct/merged by bit pattern: 6 runs.
	if got := len(segs[0].Enc.RunEnds); got != 6 {
		t.Fatalf("run count = %d, want 6", got)
	}
	decodeAll(t, col)
}

func TestEncodeDecodeFORInts(t *testing.T) {
	c := NewColumn("k", KindInt)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		c.AppendInt(1_000_000 + rng.Int63n(4096)) // narrow span → FOR
	}
	tbl := buildSealed(t, c, []int{c.Len()})
	segs := tbl.Col("k").EncodedSegments()
	if len(segs) != 1 || segs[0].Enc.Kind != EncFOR {
		t.Fatalf("want one FOR segment, got kind %v", segs[0].Enc.Kind)
	}
	decodeAll(t, tbl.Col("k"))
}

func TestEncodeDecodeFORNegativeSpan(t *testing.T) {
	c := NewColumn("k", KindInt)
	for i := 0; i < 1000; i++ {
		c.AppendInt(int64(i%100) - 50) // spans negative..positive
	}
	tbl := buildSealed(t, c, []int{c.Len()})
	decodeAll(t, tbl.Col("k"))
}

func TestEncodeDecodeDictRuns(t *testing.T) {
	c := NewColumn("s", KindString)
	for i := 0; i < 3000; i++ {
		c.AppendString([]string{"TN", "CA", "NY"}[i/1000])
	}
	tbl := buildSealed(t, c, []int{c.Len()})
	segs := tbl.Col("s").EncodedSegments()
	if len(segs) != 1 || segs[0].Enc.Kind != EncRLE {
		t.Fatalf("want RLE over codes, got %+v", segs)
	}
	decodeAll(t, tbl.Col("s"))
}

func TestEncodeTinySegmentSkipped(t *testing.T) {
	c := NewColumn("x", KindFloat)
	for i := 0; i < 8; i++ { // below minEncodeRows
		c.AppendFloat(1)
	}
	tbl := buildSealed(t, c, []int{8})
	for _, es := range tbl.Col("x").EncodedSegments() {
		if es.Enc.Kind != EncNone {
			t.Fatalf("tiny segment encoded as %v", es.Enc.Kind)
		}
	}
}

func TestEncodeAppendOntoSealed(t *testing.T) {
	c := NewColumn("x", KindInt)
	for i := 0; i < 2048; i++ {
		c.AppendInt(7)
	}
	tbl := buildSealed(t, c, []int{2048})
	delta := NewTable("t", NewColumn("x", KindInt))
	for i := 0; i < 1024; i++ {
		delta.Col("x").AppendInt(9)
	}
	t2, err := tbl.AppendRows(delta)
	if err != nil {
		t.Fatal(err)
	}
	t2.Seal() // registration seals the successor, encoding the new tail segment
	// Old version keeps its encodings; new version covers both segments.
	old := tbl.Col("x").EncodedSegments()
	neu := t2.Col("x").EncodedSegments()
	if len(old) != 1 {
		t.Fatalf("old version has %d segments", len(old))
	}
	if len(neu) != 2 {
		t.Fatalf("appended version has %d encoded segments, want 2", len(neu))
	}
	if neu[1].Lo != 2048 || neu[1].Hi != 3072 {
		t.Fatalf("new segment window [%d,%d)", neu[1].Lo, neu[1].Hi)
	}
	decodeAll(t, t2.Col("x"))
}

func TestRunCoverageWindows(t *testing.T) {
	c := NewColumn("x", KindFloat)
	for i := 0; i < 4096; i++ {
		c.AppendFloat(float64(i / 1024))
	}
	tbl := buildSealed(t, c, []int{2048, 4096})
	col := tbl.Col("x")
	if _, _, ok := col.RunCoverage(0, 4096); !ok {
		t.Fatal("full window should be covered by RLE segments")
	}
	if _, _, ok := col.RunCoverage(100, 3000); !ok {
		t.Fatal("interior window spanning both segments should be covered")
	}
	if _, integral, ok := col.RunCoverage(0, 0); !ok || !integral {
		t.Fatal("empty window is trivially covered")
	}
	// Sum over runs equals dense sum.
	var dense, viaRuns float64
	for _, v := range col.F[100:3000] {
		dense += v
	}
	col.ForEachRun(100, 3000, func(v float64, n int) { viaRuns += v * float64(n) })
	if dense != viaRuns {
		t.Fatalf("ForEachRun sum %v != dense %v", viaRuns, dense)
	}
}

func TestRunCoverageDeclines(t *testing.T) {
	// High-entropy ints land in FOR (or stats-only), which must decline
	// run coverage.
	c := NewColumn("k", KindInt)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2048; i++ {
		c.AppendInt(rng.Int63n(1 << 20))
	}
	tbl := buildSealed(t, c, []int{2048})
	if _, _, ok := tbl.Col("k").RunCoverage(0, 2048); ok {
		t.Fatal("non-RLE segment must decline run coverage")
	}
}

// ---- SDF2 persistence round-trips ----

// tablesIdentical compares every cell bit-for-bit.
func tablesIdentical(t *testing.T, a, b *Table) {
	t.Helper()
	if a.NumRows() != b.NumRows() || len(a.Cols) != len(b.Cols) {
		t.Fatalf("shape: %dx%d vs %dx%d", a.NumRows(), len(a.Cols), b.NumRows(), len(b.Cols))
	}
	if a.Epoch != b.Epoch {
		t.Fatalf("epoch: %d vs %d", a.Epoch, b.Epoch)
	}
	for ci, ca := range a.Cols {
		cb := b.Cols[ci]
		if ca.Name != cb.Name || ca.Kind != cb.Kind {
			t.Fatalf("col %d: %s/%v vs %s/%v", ci, ca.Name, ca.Kind, cb.Name, cb.Kind)
		}
		for i := 0; i < a.NumRows(); i++ {
			switch ca.Kind {
			case KindFloat:
				if math.Float64bits(ca.F[i]) != math.Float64bits(cb.F[i]) {
					t.Fatalf("col %s row %d: %v vs %v", ca.Name, i, ca.F[i], cb.F[i])
				}
			case KindInt:
				if ca.I[i] != cb.I[i] {
					t.Fatalf("col %s row %d: %d vs %d", ca.Name, i, ca.I[i], cb.I[i])
				}
			default:
				if ca.StringAt(i) != cb.StringAt(i) {
					t.Fatalf("col %s row %d: %q vs %q", ca.Name, i, ca.StringAt(i), cb.StringAt(i))
				}
			}
		}
	}
}

// adversarialTable exercises every encoding path: RLE floats with
// NaN/±Inf/-0 runs, FOR ints, high-entropy stats-only ints, dict
// strings, a constant column and an alternating column.
func adversarialTable(rows int) *Table {
	rng := rand.New(rand.NewSource(31))
	tbl := NewTable("adv",
		NewColumn("runs_f", KindFloat),
		NewColumn("for_i", KindInt),
		NewColumn("rand_i", KindInt),
		NewColumn("cat", KindString),
		NewColumn("const_f", KindFloat),
		NewColumn("alt_i", KindInt))
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 2.5}
	for i := 0; i < rows; i++ {
		tbl.Col("runs_f").AppendFloat(specials[(i/97)%len(specials)])
		tbl.Col("for_i").AppendInt(500 + rng.Int63n(1000))
		tbl.Col("rand_i").AppendInt(rng.Int63())
		tbl.Col("cat").AppendString([]string{"a", "b", "c", "d"}[(i/53)%4])
		tbl.Col("const_f").AppendFloat(math.Pi)
		tbl.Col("alt_i").AppendInt(int64(i % 2))
	}
	tbl.Segments = []int{rows / 3, 2 * rows / 3, rows}
	tbl.Seal()
	return tbl
}

func TestSegFileRoundTripAdversarial(t *testing.T) {
	tbl := adversarialTable(3000)
	path := filepath.Join(t.TempDir(), "adv"+SegFileExt)
	if err := tbl.SaveSegFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSegFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, tbl, back)
	// Loaded tables carry usable encodings (same segment map).
	for ci, c := range tbl.Cols {
		bc := back.Cols[ci]
		if len(bc.EncodedSegments()) != len(c.EncodedSegments()) {
			t.Fatalf("col %s: %d encoded segments reloaded, want %d",
				c.Name, len(bc.EncodedSegments()), len(c.EncodedSegments()))
		}
		decodeAll(t, bc)
	}
}

func TestSegFileRoundTripEmptyTable(t *testing.T) {
	tbl := NewTable("empty", NewColumn("x", KindFloat), NewColumn("s", KindString))
	tbl.Seal()
	path := filepath.Join(t.TempDir(), "e"+SegFileExt)
	if err := tbl.SaveSegFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSegFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, tbl, back)
}

func TestSegFileRoundTripAfterAppend(t *testing.T) {
	tbl := adversarialTable(1500)
	delta := NewTable("adv",
		NewColumn("runs_f", KindFloat),
		NewColumn("for_i", KindInt),
		NewColumn("rand_i", KindInt),
		NewColumn("cat", KindString),
		NewColumn("const_f", KindFloat),
		NewColumn("alt_i", KindInt))
	for i := 0; i < 600; i++ {
		delta.Col("runs_f").AppendFloat(1)
		delta.Col("for_i").AppendInt(7)
		delta.Col("rand_i").AppendInt(int64(i))
		delta.Col("cat").AppendString("e") // new dict entry
		delta.Col("const_f").AppendFloat(math.Pi)
		delta.Col("alt_i").AppendInt(3)
	}
	t2, err := tbl.AppendRows(delta)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "a"+SegFileExt)
	if err := t2.SaveSegFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadSegFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tablesIdentical(t, t2, back)
}

func TestDecodeTableRejectsCorruption(t *testing.T) {
	tbl := adversarialTable(600)
	data, err := EncodeTable(tbl)
	if err != nil {
		t.Fatal(err)
	}
	// Truncations at every prefix length must error, never panic.
	for n := 0; n < len(data); n += 37 {
		if _, err := DecodeTable(data[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded successfully", n)
		} else if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("truncation to %d: error %v not wrapped in ErrCorruptSegment", n, err)
		}
	}
	// Single-byte flips: either a clean error or a successful decode of
	// equal row count (bit flips in value payloads are undetectable) —
	// but never a panic.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		mut := append([]byte(nil), data...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		if bt, err := DecodeTable(mut); err == nil {
			if bt.NumRows() < 0 {
				t.Fatal("negative row count")
			}
		} else if !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("flip trial %d: error %v not wrapped in ErrCorruptSegment", trial, err)
		}
	}
}

// FuzzDecodeTable drives the segment decoder with arbitrary bytes: it
// must return a typed error or a valid table, never panic.
func FuzzDecodeTable(f *testing.F) {
	small := NewTable("s", NewColumn("x", KindFloat), NewColumn("k", KindInt), NewColumn("c", KindString))
	for i := 0; i < 64; i++ {
		small.Col("x").AppendFloat(float64(i % 4))
		small.Col("k").AppendInt(int64(i % 8))
		small.Col("c").AppendString([]string{"p", "q"}[i%2])
	}
	small.Segments = []int{32, 64}
	small.Seal()
	if seed, err := EncodeTable(small); err == nil {
		f.Add(seed)
		f.Add(seed[:len(seed)/2])
	}
	if seed, err := EncodeTable(adversarialTable(200)); err == nil {
		f.Add(seed)
	}
	f.Add([]byte("SDF2"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		bt, err := DecodeTable(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("error %v not wrapped in ErrCorruptSegment", err)
			}
			return
		}
		if err := bt.Validate(); err != nil {
			t.Fatalf("decoded table fails validation: %v", err)
		}
	})
}
