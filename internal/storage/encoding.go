package storage

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// This file is the v2 encoding layer: per-segment acceleration
// structures chosen by a cheap stats pass when a segment seals. The
// dense arrays (F/I/Codes) remain the primary representation — every
// predicate, join and accessor keeps reading them — and encodings
// attach alongside as immutable per-segment summaries:
//
//   - RLE records maximal bitwise-constant runs. Aggregation kernels
//     fold a run as (value, count) in O(1) instead of O(count)
//     (exec.StateTask.FoldRuns), and the persistent format stores runs
//     instead of rows.
//   - FOR (frame-of-reference) bit-packs an int segment as
//     base + width-bit deltas. In heap it is an I/O format: the
//     persistent layer writes packed blocks and DecodeInto rebuilds the
//     dense array on load, batch-at-a-time.
//
// Runs use Float64bits equality, not ==: NaNs with equal payloads merge
// into one run (adversarial NaN runs stay compact) and +0/-0 stay
// distinct, which is what makes run-folds order-identical to the dense
// scan.

// EncodingKind identifies a segment encoding.
type EncodingKind uint8

const (
	// EncNone marks a segment stored dense-only.
	EncNone EncodingKind = iota
	// EncRLE is run-length encoding of bitwise-constant runs.
	EncRLE
	// EncFOR is frame-of-reference bit-packing for int64 segments.
	EncFOR
)

func (k EncodingKind) String() string {
	switch k {
	case EncNone:
		return "none"
	case EncRLE:
		return "rle"
	case EncFOR:
		return "for"
	}
	return "EncodingKind(?)"
}

// Encoding is one sealed segment's encoded form plus the stats the
// exactness guards need. Immutable after construction.
type Encoding struct {
	Kind EncodingKind
	// NumRows is the segment length.
	NumRows int

	// RLE: run i covers rows [RunEnds[i-1], RunEnds[i]) of the segment
	// and holds the constant value in the kind-matching array.
	RunEnds  []int32
	RunVals  []float64 // KindFloat
	RunValsI []int64   // KindInt
	RunValsC []int32   // KindString codes

	// FOR: value[i] = ForBase + bits(Packed, i*ForWidth, ForWidth).
	ForBase  int64
	ForWidth uint8
	Packed   []uint64

	// Integral reports every value in the segment is an exact integer
	// (trivially true for int and code segments; false if the segment
	// holds any NaN, ±Inf or fractional float). MaxAbs is the largest
	// |value| (0 for an empty segment; +Inf if the segment holds ±Inf).
	Integral bool
	MaxAbs   float64
}

// EncSeg attaches an Encoding to the half-open row range [Lo, Hi) of a
// column version. Ranges are in that version's coordinates; Slice
// rebases them.
type EncSeg struct {
	Lo, Hi int
	Enc    *Encoding
}

// minEncodeRows is the smallest segment worth encoding. Kept small so
// unit-scale tables exercise the encoded paths.
const minEncodeRows = 16

// rleMaxRunFrac: RLE is chosen only when it actually compresses —
// runs ≤ rows/4, i.e. mean run length ≥ 4.
const rleMaxRunFrac = 4

// forMaxWidth caps FOR packing at 32 bits per value; beyond that the
// packed form stops being an interesting win over raw rows.
const forMaxWidth = 32

// encodedSegsBuilt counts encodings built process-wide (observability).
var encodedSegsBuilt atomic.Int64

// runFolds counts aggregate run-folds executed process-wide; bumped by
// the exec layer through CountRunFold.
var runFolds atomic.Int64

// EncodedSegmentsBuilt returns the process-lifetime count of segment
// encodings built (metrics).
func EncodedSegmentsBuilt() int64 { return encodedSegsBuilt.Load() }

// RunFoldsExecuted returns the process-lifetime count of O(1) run-folds
// executed by aggregation kernels (metrics).
func RunFoldsExecuted() int64 { return runFolds.Load() }

// CountRunFolds adds n to the run-fold counter.
func CountRunFolds(n int64) { runFolds.Add(n) }

// EncodedSegments returns the column's encoded segments (nil when the
// column has none). The returned slice and encodings are immutable.
func (c *Column) EncodedSegments() []EncSeg { return c.encs }

// buildEncodings encodes every sealed segment of the column that has
// none yet, given the owning table's cumulative segment boundaries.
// Called under Table.Seal's once / the ingest lock, never concurrently
// with itself for one column version.
func (c *Column) buildEncodings(boundaries []int) {
	lo := 0
	if n := len(c.encs); n > 0 {
		lo = c.encs[n-1].Hi
	}
	for _, end := range boundaries {
		if end <= lo || end > c.Len() {
			continue
		}
		if enc := encodeSegment(c, lo, end); enc != nil {
			c.encs = append(c.encs, EncSeg{Lo: lo, Hi: end, Enc: enc})
			encodedSegsBuilt.Add(1)
		} else {
			// Record the stats-only segment so coverage queries can still
			// answer Integral/MaxAbs questions from segment summaries.
			c.encs = append(c.encs, EncSeg{Lo: lo, Hi: end, Enc: statsOnlySegment(c, lo, end)})
		}
		lo = end
	}
}

// encodeSegment picks an encoding for rows [lo, hi) of c, or nil when
// neither RLE nor FOR pays off.
func encodeSegment(c *Column, lo, hi int) *Encoding {
	n := hi - lo
	if n < minEncodeRows {
		return nil
	}
	switch c.Kind {
	case KindFloat:
		return encodeFloatSeg(c.F[lo:hi])
	case KindInt:
		return encodeIntSeg(c.I[lo:hi])
	default:
		return encodeCodeSeg(c.Codes[lo:hi])
	}
}

// statsOnlySegment summarizes a segment that stays dense-only: Kind is
// EncNone but Integral/MaxAbs are still valid for guard checks.
func statsOnlySegment(c *Column, lo, hi int) *Encoding {
	e := &Encoding{Kind: EncNone, NumRows: hi - lo}
	switch c.Kind {
	case KindFloat:
		e.Integral, e.MaxAbs = floatSegStats(c.F[lo:hi])
	case KindInt:
		e.Integral = true
		for _, v := range c.I[lo:hi] {
			if a := math.Abs(float64(v)); a > e.MaxAbs {
				e.MaxAbs = a
			}
		}
	default:
		e.Integral = true
		for _, v := range c.Codes[lo:hi] {
			if a := math.Abs(float64(v)); a > e.MaxAbs {
				e.MaxAbs = a
			}
		}
	}
	return e
}

func floatSegStats(vals []float64) (integral bool, maxAbs float64) {
	integral = true
	for _, v := range vals {
		if math.IsNaN(v) {
			integral = false
			continue
		}
		if v != math.Trunc(v) || math.IsInf(v, 0) {
			integral = false
		}
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a // +Inf lands here and trips the guards downstream
		}
	}
	return integral, maxAbs
}

func encodeFloatSeg(vals []float64) *Encoding {
	n := len(vals)
	runs := countRunsBits(vals)
	if runs > n/rleMaxRunFrac {
		return nil
	}
	e := &Encoding{Kind: EncRLE, NumRows: n,
		RunEnds: make([]int32, 0, runs), RunVals: make([]float64, 0, runs)}
	prev := math.Float64bits(vals[0])
	for i := 1; i <= n; i++ {
		if i == n || math.Float64bits(vals[i]) != prev {
			e.RunVals = append(e.RunVals, math.Float64frombits(prev))
			e.RunEnds = append(e.RunEnds, int32(i))
			if i < n {
				prev = math.Float64bits(vals[i])
			}
		}
	}
	e.Integral, e.MaxAbs = floatSegStats(vals)
	return e
}

func countRunsBits(vals []float64) int {
	runs := 1
	prev := math.Float64bits(vals[0])
	for _, v := range vals[1:] {
		if b := math.Float64bits(v); b != prev {
			runs++
			prev = b
		}
	}
	return runs
}

func encodeIntSeg(vals []int64) *Encoding {
	n := len(vals)
	runs := 1
	minV, maxV := vals[0], vals[0]
	prev := vals[0]
	for _, v := range vals[1:] {
		if v != prev {
			runs++
			prev = v
		}
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	maxAbs := math.Max(math.Abs(float64(minV)), math.Abs(float64(maxV)))
	if runs <= n/rleMaxRunFrac {
		e := &Encoding{Kind: EncRLE, NumRows: n, Integral: true, MaxAbs: maxAbs,
			RunEnds: make([]int32, 0, runs), RunValsI: make([]int64, 0, runs)}
		prev = vals[0]
		for i := 1; i <= n; i++ {
			if i == n || vals[i] != prev {
				e.RunValsI = append(e.RunValsI, prev)
				e.RunEnds = append(e.RunEnds, int32(i))
				if i < n {
					prev = vals[i]
				}
			}
		}
		return e
	}
	// FOR: pack as base + width-bit deltas when the range is narrow.
	// The delta computation must not overflow: guard the span first.
	span := uint64(maxV) - uint64(minV) // two's-complement span, exact
	width := bits.Len64(span)
	if width > forMaxWidth {
		return nil
	}
	if width == 0 {
		width = 1 // constant segment that somehow missed RLE (n small)
	}
	e := &Encoding{Kind: EncFOR, NumRows: n, Integral: true, MaxAbs: maxAbs,
		ForBase: minV, ForWidth: uint8(width)}
	e.Packed = make([]uint64, (n*width+63)/64)
	for i, v := range vals {
		delta := uint64(v) - uint64(minV)
		bitPos := i * width
		word, off := bitPos/64, uint(bitPos%64)
		e.Packed[word] |= delta << off
		if off+uint(width) > 64 {
			e.Packed[word+1] |= delta >> (64 - off)
		}
	}
	return e
}

func encodeCodeSeg(vals []int32) *Encoding {
	n := len(vals)
	runs := 1
	prev := vals[0]
	maxAbs := math.Abs(float64(vals[0]))
	for _, v := range vals[1:] {
		if v != prev {
			runs++
			prev = v
		}
		if a := math.Abs(float64(v)); a > maxAbs {
			maxAbs = a
		}
	}
	if runs > n/rleMaxRunFrac {
		return nil
	}
	e := &Encoding{Kind: EncRLE, NumRows: n, Integral: true, MaxAbs: maxAbs,
		RunEnds: make([]int32, 0, runs), RunValsC: make([]int32, 0, runs)}
	prev = vals[0]
	for i := 1; i <= n; i++ {
		if i == n || vals[i] != prev {
			e.RunValsC = append(e.RunValsC, prev)
			e.RunEnds = append(e.RunEnds, int32(i))
			if i < n {
				prev = vals[i]
			}
		}
	}
	return e
}

// DecodeInto writes the segment's rows [from, to) (segment-local
// coordinates) into the kind-matching destination slice, which must
// have length to-from. This is the FOR/RLE → morsel-batch decode
// primitive; dstF receives floats (and int/code values coerced), dstI
// int64s, dstC codes — exactly one destination is used per call site.
func (e *Encoding) DecodeInto(from, to int, dstF []float64, dstI []int64, dstC []int32) {
	switch e.Kind {
	case EncRLE:
		ri := e.runIndexOf(from)
		pos := from
		for pos < to {
			end := int(e.RunEnds[ri])
			if end > to {
				end = to
			}
			switch {
			case e.RunVals != nil:
				v := e.RunVals[ri]
				for i := pos; i < end; i++ {
					dstF[i-from] = v
				}
			case e.RunValsI != nil:
				v := e.RunValsI[ri]
				for i := pos; i < end; i++ {
					dstI[i-from] = v
				}
			default:
				v := e.RunValsC[ri]
				for i := pos; i < end; i++ {
					dstC[i-from] = v
				}
			}
			pos = end
			ri++
		}
	case EncFOR:
		w := int(e.ForWidth)
		for i := from; i < to; i++ {
			bitPos := i * w
			word, off := bitPos/64, uint(bitPos%64)
			delta := e.Packed[word] >> off
			if off+uint(w) > 64 {
				delta |= e.Packed[word+1] << (64 - off)
			}
			delta &= (1 << uint(w)) - 1
			dstI[i-from] = e.ForBase + int64(delta)
		}
	}
}

// runIndexOf returns the index of the run containing segment-local row
// pos (binary search over the cumulative ends).
func (e *Encoding) runIndexOf(pos int) int {
	lo, hi := 0, len(e.RunEnds)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(e.RunEnds[mid]) <= pos {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// RunCoverage reports whether column rows [lo, hi) are fully covered by
// RLE-encoded segments, along with the covering segments' combined
// Integral flag and max |value|. ok=false means at least one row falls
// in a dense-only, FOR, or unencoded range and a run-fold caller must
// use the dense path.
func (c *Column) RunCoverage(lo, hi int) (maxAbs float64, integral bool, ok bool) {
	if lo >= hi {
		return 0, true, true
	}
	integral = true
	pos := lo
	for _, s := range c.encs {
		if s.Hi <= pos {
			continue
		}
		if s.Lo > pos {
			return 0, false, false // gap
		}
		if s.Enc == nil || s.Enc.Kind != EncRLE {
			return 0, false, false
		}
		if s.Enc.MaxAbs > maxAbs {
			maxAbs = s.Enc.MaxAbs
		}
		integral = integral && s.Enc.Integral
		pos = s.Hi
		if pos >= hi {
			return maxAbs, integral, true
		}
	}
	return 0, false, false
}

// ForEachRun calls fn(value, count) for each constant run intersected
// with column rows [lo, hi), in row order, with values coerced to
// float64 (codes/ints exactly, per RLE construction). Callers must have
// verified RunCoverage(lo, hi) first.
func (c *Column) ForEachRun(lo, hi int, fn func(v float64, n int)) {
	for _, s := range c.encs {
		if s.Hi <= lo {
			continue
		}
		if s.Lo >= hi {
			return
		}
		e := s.Enc
		from, to := lo-s.Lo, hi-s.Lo // segment-local window
		if from < 0 {
			from = 0
		}
		if to > e.NumRows {
			to = e.NumRows
		}
		ri := e.runIndexOf(from)
		pos := from
		for pos < to {
			end := int(e.RunEnds[ri])
			if end > to {
				end = to
			}
			var v float64
			switch {
			case e.RunVals != nil:
				v = e.RunVals[ri]
			case e.RunValsI != nil:
				v = float64(e.RunValsI[ri])
			default:
				v = float64(e.RunValsC[ri])
			}
			fn(v, end-pos)
			pos = end
			ri++
		}
	}
}

// sliceEncs rebases the encodings of a parent column onto a [lo, hi)
// view: only segments fully inside the window carry over (a partial
// segment's runs would need re-clipping; the dense arrays still cover
// those rows), shifted into view coordinates.
func sliceEncs(encs []EncSeg, lo, hi int) []EncSeg {
	var out []EncSeg
	for _, s := range encs {
		if s.Lo >= lo && s.Hi <= hi {
			out = append(out, EncSeg{Lo: s.Lo - lo, Hi: s.Hi - lo, Enc: s.Enc})
		}
	}
	return out
}
