// Package storage implements the columnar in-memory table substrate for
// the SUDAF engine: typed columns (float64, int64, dictionary-encoded
// strings), row builders, selection vectors, and CSV import/export.
//
// Strings are dictionary-encoded at append time so that group-by keys and
// equality predicates operate on integer codes, which keeps the hash
// aggregation paths monomorphic and fast.
package storage

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a column type.
type Kind int

const (
	// KindFloat is a float64 measure column.
	KindFloat Kind = iota
	// KindInt is an int64 key or attribute column.
	KindInt
	// KindString is a dictionary-encoded string column.
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column is a typed column vector. Exactly one of F, I, Codes is
// populated, per Kind.
//
// A column goes through two phases. During construction it is mutable:
// Append* grow it in place. Once its table is registered in a catalog it
// is sealed — rows [0, Len()) become immutable, in-place Append* panic,
// and further growth happens only through Table.AppendRows, which
// produces a *new* column version sharing the sealed prefix arrays.
// Readers holding the old version never observe the new rows (their
// slice headers pin the length), which is what makes appends safe under
// concurrent scans without any per-row locking.
type Column struct {
	Name string
	Kind Kind

	F     []float64
	I     []int64
	Codes []int32
	dict  []string
	index map[string]int32

	// sealed marks rows [0, Len()) immutable; in-place Append* panic.
	// Set when the owning table is registered (Table.Seal) and on every
	// version produced by AppendRows.
	sealed bool
	// ownsTail marks this version as the owner of its backing arrays'
	// spare capacity: AppendRows may extend the arrays in place past
	// Len(). Exactly one version in a chain owns the tail at a time —
	// appending transfers ownership to the child, so two sibling
	// versions can never write the same spare bytes. Views (Slice,
	// Renamed) never own a tail.
	ownsTail bool

	// Cached (min, max, hasNaN), invalidated whenever Len() changes
	// (statsLen is the length the stats were computed at). Guarded by
	// statsMu.
	statsMu          sync.Mutex
	statsOK          bool
	statsLen         int
	statMin, statMax float64
	statNaN          bool

	// encs are per-segment acceleration encodings over the dense arrays
	// (RLE runs, FOR bit-packing), built when the owning table seals a
	// segment. Immutable once built; views carry the subset fully inside
	// their window. See encoding.go.
	encs []EncSeg
}

// NewColumn creates an empty column.
func NewColumn(name string, kind Kind) *Column {
	c := &Column{Name: name, Kind: kind, ownsTail: true}
	if kind == KindString {
		c.index = map[string]int32{}
	}
	return c
}

// Len returns the number of values.
func (c *Column) Len() int {
	switch c.Kind {
	case KindFloat:
		return len(c.F)
	case KindInt:
		return len(c.I)
	default:
		return len(c.Codes)
	}
}

// mustMutable panics when the column is sealed: in-place appends after
// registration would race concurrent readers (and could corrupt sibling
// versions sharing the backing array). Sealed tables grow through
// Table.AppendRows instead.
func (c *Column) mustMutable() {
	if c.sealed {
		panic(fmt.Sprintf("storage: in-place append to sealed column %q; use Table.AppendRows", c.Name))
	}
}

// AppendFloat appends to a float column.
func (c *Column) AppendFloat(v float64) { c.mustMutable(); c.F = append(c.F, v) }

// AppendInt appends to an int column.
func (c *Column) AppendInt(v int64) { c.mustMutable(); c.I = append(c.I, v) }

// AppendString appends to a string column, interning through the dict.
func (c *Column) AppendString(s string) {
	c.mustMutable()
	code, ok := c.index[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.index[s] = code
	}
	c.Codes = append(c.Codes, code)
}

// Code returns the dictionary code for s, or -1 if s never appears.
func (c *Column) Code(s string) int32 {
	if code, ok := c.index[s]; ok {
		return code
	}
	return -1
}

// StringAt returns the decoded string at row i.
func (c *Column) StringAt(i int) string { return c.dict[c.Codes[i]] }

// DictString decodes a dictionary code directly.
func (c *Column) DictString(code int32) string { return c.dict[code] }

// DictSize returns the number of distinct strings.
func (c *Column) DictSize() int { return len(c.dict) }

// AsFloat returns the value at row i coerced to float64 (string columns
// return their code; callers should not aggregate over strings).
func (c *Column) AsFloat(i int) float64 {
	switch c.Kind {
	case KindFloat:
		return c.F[i]
	case KindInt:
		return float64(c.I[i])
	default:
		return float64(c.Codes[i])
	}
}

// AsInt returns the value at row i as an int64 (floats truncate; strings
// return the dictionary code).
func (c *Column) AsInt(i int) int64 {
	switch c.Kind {
	case KindFloat:
		return int64(c.F[i])
	case KindInt:
		return c.I[i]
	default:
		return int64(c.Codes[i])
	}
}

// ValueString renders the value at row i for output.
func (c *Column) ValueString(i int) string {
	switch c.Kind {
	case KindFloat:
		return formatFloat(c.F[i])
	case KindInt:
		return strconv.FormatInt(c.I[i], 10)
	default:
		return c.StringAt(i)
	}
}

// formatFloat renders a float64 for human display: integral values
// print without an exponent, negative zero keeps its sign (the integer
// fast path would print it as "0"), and everything else is rounded to
// six significant digits. Persistence paths that must round-trip every
// bit use formatFloatExact instead.
func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		if v == 0 && math.Signbit(v) {
			return "-0"
		}
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// formatFloatExact renders a float64 so that strconv.ParseFloat reads
// back the identical bit pattern: NaN and ±Inf spell the forms
// ParseFloat accepts, negative zero keeps its sign, and everything else
// uses the shortest round-trippable decimal form.
func formatFloatExact(v float64) string {
	if v != v {
		return "NaN"
	}
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		if v == 0 && math.Signbit(v) {
			return "-0"
		}
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// csvString renders the value at row i for the CSV writer. Unlike the
// display form it is full-precision, so a WriteCSV/LoadCSV round trip
// reproduces every float bit-for-bit.
func (c *Column) csvString(i int) string {
	if c.Kind == KindFloat {
		return formatFloatExact(c.F[i])
	}
	return c.ValueString(i)
}

// GatherFloats writes the values of rows rows[lo:hi] into out[:hi-lo],
// coerced to float64 (string columns yield their dictionary codes). The
// loop is monomorphic per kind — this is the chunk-gather primitive of
// the engine's batch kernels.
func (c *Column) GatherFloats(rows []int32, lo, hi int, out []float64) {
	switch c.Kind {
	case KindFloat:
		f := c.F
		for i := lo; i < hi; i++ {
			out[i-lo] = f[rows[i]]
		}
	case KindInt:
		v := c.I
		for i := lo; i < hi; i++ {
			out[i-lo] = float64(v[rows[i]])
		}
	default:
		codes := c.Codes
		for i := lo; i < hi; i++ {
			out[i-lo] = float64(codes[rows[i]])
		}
	}
}

// Slice returns a zero-copy view of rows [lo, hi): the view shares the
// underlying arrays (and dictionary) with the parent column. The view is
// sealed (appending panics) and its slice headers are capacity-capped, so
// it can never alias the growing tail of a live version — append-created
// successors write past hi, which the view's header cannot reach.
func (c *Column) Slice(lo, hi int) *Column {
	n := NewColumn(c.Name, c.Kind)
	n.sealed, n.ownsTail = true, false
	switch c.Kind {
	case KindFloat:
		n.F = c.F[lo:hi:hi]
	case KindInt:
		n.I = c.I[lo:hi:hi]
	default:
		n.Codes = c.Codes[lo:hi:hi]
		n.dict = c.dict[:len(c.dict):len(c.dict)]
		n.index = c.index
	}
	n.encs = sliceEncs(c.encs, lo, hi)
	return n
}

// Renamed returns a view of the column under a new name, sharing the
// underlying data. Like Slice, the view is sealed and capacity-capped:
// it exposes exactly the parent's current rows and can neither grow nor
// observe a successor version's tail.
func (c *Column) Renamed(name string) *Column {
	n := NewColumn(name, c.Kind)
	n.sealed, n.ownsTail = true, false
	n.F = c.F[:len(c.F):len(c.F)]
	n.I = c.I[:len(c.I):len(c.I)]
	n.Codes = c.Codes[:len(c.Codes):len(c.Codes)]
	n.dict = c.dict[:len(c.dict):len(c.dict)]
	if c.index != nil {
		n.index = c.index
	}
	n.encs = sliceEncs(c.encs, 0, c.Len())
	return n
}

// Stats returns the cached (min, max) of a numeric column. The cache is
// append-aware: it is recomputed whenever the column's length no longer
// matches the length it was computed at, so stats can never go stale
// across in-place appends (sealed versions are immutable, so for them the
// scan runs once). An empty or all-NaN numeric column reports
// (+Inf, -Inf); callers deriving integer domains or sign facts from
// stats must guard for that — use StatsFull when NaN presence matters
// (see exec.keyDomainOf and the engine's positivity check). String
// columns return (0, 0).
func (c *Column) Stats() (min, max float64) {
	min, max, _ = c.StatsFull()
	return min, max
}

// StatsFull returns the cached (min, max) plus whether the column holds
// any NaN value. NaN values are excluded from min/max (they compare
// false against everything), so an all-NaN column reports the same
// (+Inf, -Inf) sentinels as an empty one — hasNaN is how callers tell
// "no values" apart from "no ordered values".
func (c *Column) StatsFull() (min, max float64, hasNaN bool) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	n := c.Len()
	if c.statsOK && c.statsLen == n {
		return c.statMin, c.statMax, c.statNaN
	}
	c.statMin, c.statMax, c.statNaN = math.Inf(1), math.Inf(-1), false
	switch c.Kind {
	case KindFloat:
		for _, v := range c.F {
			if v != v {
				c.statNaN = true
				continue
			}
			if v < c.statMin {
				c.statMin = v
			}
			if v > c.statMax {
				c.statMax = v
			}
		}
	case KindInt:
		for _, v := range c.I {
			fv := float64(v)
			if fv < c.statMin {
				c.statMin = fv
			}
			if fv > c.statMax {
				c.statMax = fv
			}
		}
	default:
		c.statMin, c.statMax = 0, 0
	}
	c.statsOK, c.statsLen = true, n
	return c.statMin, c.statMax, c.statNaN
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name   string
	Cols   []*Column
	byName map[string]int
	// Epoch identifies this table *version*: 0 while the table is still
	// being built, stamped from the global counter when it is registered
	// in a catalog, and stamped afresh by AppendRows for every successor
	// version. Data fingerprints embed the epoch, so cached aggregation
	// states are keyed to exactly one version of the data.
	Epoch int64
	// Segments records the cumulative row count at each sealed append
	// boundary: Segments[0] is the initially loaded prefix, each later
	// entry the end of one AppendRows batch. A query snapshot pins one
	// table version and therefore one segment list; rows past the last
	// boundary belong to future versions and are invisible to it.
	Segments []int
	// sealOnce makes Seal write-once: concurrent registrations of the
	// same table version (query-snapshot pinning) must not race on the
	// sealed flags.
	sealOnce sync.Once
	// err is the first construction error (e.g. a duplicate column passed
	// to NewTable); surfaced by Err and Validate rather than panicking.
	err error
}

// NewTable creates a table with the given columns (which may be empty).
// A duplicate column name is recorded as a deferred error (see Err) and
// the duplicate is not added.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, byName: map[string]int{}}
	for _, c := range cols {
		_ = t.AddColumn(c)
	}
	return t
}

// AddColumn registers a column. A duplicate name returns an error, leaves
// the table unchanged, and is also recorded as the table's deferred error
// so Validate (and catalog registration) reject the schema.
func (t *Table) AddColumn(c *Column) error {
	if _, dup := t.byName[c.Name]; dup {
		err := fmt.Errorf("table %s: duplicate column %s", t.Name, c.Name)
		if t.err == nil {
			t.err = err
		}
		return err
	}
	t.byName[c.Name] = len(t.Cols)
	t.Cols = append(t.Cols, c)
	return nil
}

// Err returns the first construction error recorded for the table.
func (t *Table) Err() error { return t.err }

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.Cols[i]
	}
	return nil
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// ColumnNames returns the column names in schema order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// Slice returns a zero-copy view of rows [lo, hi) of every column. The
// view keeps the table's name and schema; see Column.Slice.
func (t *Table) Slice(lo, hi int) *Table {
	out := NewTable(t.Name)
	for _, c := range t.Cols {
		_ = out.AddColumn(c.Slice(lo, hi))
	}
	return out
}

// Partition splits the table's rows into n contiguous [lo, hi) ranges
// aligned to segment boundaries where possible: segments are assigned
// greedily in order so each range holds roughly NumRows()/n rows, and a
// segment larger than the per-range budget is split mid-segment rather
// than overfilling one range. Ranges cover [0, NumRows()) exactly, in
// order, and trailing ranges may be empty (lo == hi) when the table has
// fewer rows than n. n must be >= 1.
func (t *Table) Partition(n int) [][2]int {
	if n < 1 {
		n = 1
	}
	total := t.NumRows()
	// Cut points between segments (plus 0 and total) are the preferred
	// range boundaries: an append extends only the final segment, so
	// segment-aligned ranges keep earlier shards' row ranges stable.
	cuts := []int{0}
	for _, end := range t.Segments {
		if end > 0 && end <= total && end > cuts[len(cuts)-1] {
			cuts = append(cuts, end)
		}
	}
	if cuts[len(cuts)-1] != total {
		cuts = append(cuts, total)
	}
	out := make([][2]int, 0, n)
	lo := 0
	for i := 0; i < n; i++ {
		if i == n-1 {
			out = append(out, [2]int{lo, total})
			break
		}
		// Ideal end of this range if the remaining rows were split evenly
		// across the remaining ranges.
		ideal := lo + (total-lo)/(n-i)
		hi := ideal
		// Snap to the nearest segment cut if one is close enough that no
		// range ends up more than ~2x its even share.
		best, bestDist := -1, total+1
		for _, c := range cuts {
			if c < lo || c > total {
				continue
			}
			if d := abs(c - ideal); d < bestDist {
				best, bestDist = c, d
			}
		}
		share := (total - lo) / (n - i)
		if best >= lo && bestDist <= share/2 {
			hi = best
		}
		if hi < lo {
			hi = lo
		}
		if hi > total {
			hi = total
		}
		out = append(out, [2]int{lo, hi})
		lo = hi
	}
	return out
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// epochCounter hands out globally unique table-version numbers.
var epochCounter atomic.Int64

// NextEpoch returns a fresh table-version number (process-global,
// monotonically increasing, never 0).
func NextEpoch() int64 { return epochCounter.Add(1) }

// EnsureEpochAtLeast raises the global epoch counter to at least e.
// The persistence layer calls it when reloading tables that keep their
// saved epochs, so future NextEpoch values can never collide with a
// restored version (cache fingerprints embed epochs and must stay
// unique per data version).
func EnsureEpochAtLeast(e int64) {
	for {
		cur := epochCounter.Load()
		if cur >= e || epochCounter.CompareAndSwap(cur, e) {
			return
		}
	}
}

// Seal marks every column immutable: rows [0, NumRows()) can no longer
// change and in-place Append* panic. Growth after sealing goes through
// AppendRows, which builds a new version. Called by catalog registration;
// idempotent AND race-safe — concurrent queries may re-register the same
// table (e.g. pinning a view version), so the writes run exactly once.
func (t *Table) Seal() {
	t.sealOnce.Do(func() {
		for _, c := range t.Cols {
			c.sealed = true
		}
		if len(t.Segments) == 0 {
			t.Segments = []int{t.NumRows()}
		}
		// Encode the freshly sealed segments (a cheap stats pass per
		// segment; see encoding.go). Runs before the table becomes
		// visible to queries — registration publishes after Seal — so
		// readers only ever observe a fully built encoding list.
		for _, c := range t.Cols {
			c.buildEncodings(t.Segments)
		}
	})
}

// AppendRows builds the successor version of a sealed table: a new
// *Table containing t's rows followed by delta's rows, with a fresh
// Epoch and one more sealed segment. The receiver is never mutated in a
// way its readers can observe — each new column shares t's prefix
// arrays, and delta rows land either past the shared arrays' lengths
// (when this version owns the spare capacity; existing slice headers
// cannot reach them) or in a freshly allocated array. Dictionary-encoded
// columns get a copy-on-write dictionary: delta strings are re-interned,
// and when the delta introduces new strings the dict and index are
// cloned, so readers of t keep seeing exactly their sealed dict prefix.
//
// delta must have the same column names and kinds as t (any order).
// Callers append through one goroutine at a time per table chain (the
// session's ingest lock); concurrent *readers* of t need no coordination.
func (t *Table) AppendRows(delta *Table) (*Table, error) {
	if err := delta.Validate(); err != nil {
		return nil, fmt.Errorf("append to %s: %w", t.Name, err)
	}
	if len(delta.Cols) != len(t.Cols) {
		return nil, fmt.Errorf("append to %s: %d columns, want %d", t.Name, len(delta.Cols), len(t.Cols))
	}
	out := &Table{Name: t.Name, byName: map[string]int{}, Epoch: NextEpoch()}
	for _, c := range t.Cols {
		d := delta.Col(c.Name)
		if d == nil {
			return nil, fmt.Errorf("append to %s: missing column %s", t.Name, c.Name)
		}
		if d.Kind != c.Kind {
			return nil, fmt.Errorf("append to %s: column %s is %s, want %s", t.Name, c.Name, d.Kind, c.Kind)
		}
		if err := out.AddColumn(c.appendVersion(d)); err != nil {
			return nil, err
		}
	}
	segs := t.Segments
	if len(segs) == 0 {
		segs = []int{t.NumRows()}
	}
	out.Segments = append(append([]int(nil), segs...), t.NumRows()+delta.NumRows())
	return out, nil
}

// appendVersion produces the successor version of one column: c's rows
// followed by d's, sharing c's prefix storage. Tail ownership moves from
// c to the new version.
func (c *Column) appendVersion(d *Column) *Column {
	n := NewColumn(c.Name, c.Kind)
	n.sealed, n.ownsTail = true, true
	// Prefix encodings carry over unchanged (same coordinates; the
	// encodings are immutable). Capacity-capped so the successor's own
	// tail encoding never grows into a shared array. The new tail
	// segment is encoded when the successor table seals.
	n.encs = c.encs[:len(c.encs):len(c.encs)]
	switch c.Kind {
	case KindFloat:
		n.F = appendTail(c.F, d.F, c.ownsTail)
	case KindInt:
		n.I = appendTail(c.I, d.I, c.ownsTail)
	default:
		codes := c.Codes
		if !c.ownsTail {
			codes = codes[:len(codes):len(codes)]
		}
		dict, index := c.dict, c.index
		cloned := false
		for i := 0; i < d.Len(); i++ {
			s := d.StringAt(i)
			code, ok := index[s]
			if !ok {
				if !cloned {
					// First new string: clone the dict map and cap the
					// dict slice so growth reallocates instead of
					// touching storage shared with c's readers.
					ni := make(map[string]int32, len(index)+4)
					for k, v := range index {
						ni[k] = v
					}
					index = ni
					dict = dict[:len(dict):len(dict)]
					cloned = true
				}
				code = int32(len(dict))
				dict = append(dict, s)
				index[s] = code
			}
			codes = append(codes, code)
		}
		n.Codes, n.dict, n.index = codes, dict, index
	}
	c.ownsTail = false
	return n
}

// appendTail extends a sealed prefix with delta values. When the prefix
// version owns its array's spare capacity the extension happens in place
// past len (invisible to holders of the prefix header); otherwise the
// capacity-capped append reallocates, leaving the shared array untouched.
func appendTail[T any](prefix, delta []T, ownsTail bool) []T {
	if ownsTail {
		return append(prefix, delta...)
	}
	return append(prefix[:len(prefix):len(prefix)], delta...)
}

// Validate checks the table has no deferred construction error and all
// columns have equal length.
func (t *Table) Validate() error {
	if t.err != nil {
		return t.err
	}
	n := t.NumRows()
	for _, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("table %s: column %s has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// WriteCSV writes the table with a typed header (name:kind per field).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(bufio.NewWriterSize(w, 1<<20))
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(t.Cols))
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Cols {
			row[j] = c.csvString(i)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVOptions controls malformed-row handling during CSV import.
type CSVOptions struct {
	// SkipBadRows drops rows with the wrong field count or unparsable
	// values instead of failing the load; ReadCSVWith reports how many
	// rows were skipped.
	SkipBadRows bool
}

// ReadCSV reads a table written by WriteCSV, rejecting malformed rows
// with a line-numbered error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	t, _, err := ReadCSVWith(name, r, CSVOptions{})
	return t, err
}

// ReadCSVWith reads a table written by WriteCSV. Malformed rows (wrong
// field count, unparsable numeric fields) either fail with an error
// naming the offending line and column, or — with SkipBadRows — are
// dropped whole (never partially applied) and counted. Line numbers
// assume one record per line (quoted embedded newlines shift them).
func ReadCSVWith(name string, r io.Reader, opts CSVOptions) (*Table, int, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1 // field counts are validated here, with line numbers
	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("%s: read header: %w", name, err)
	}
	t := NewTable(name)
	for _, h := range header {
		parts := strings.SplitN(h, ":", 2)
		kind := KindFloat
		if len(parts) == 2 {
			switch parts[1] {
			case "int":
				kind = KindInt
			case "string":
				kind = KindString
			case "float":
				kind = KindFloat
			default:
				return nil, 0, fmt.Errorf("%s: header: unknown column kind %q", name, parts[1])
			}
		}
		if err := t.AddColumn(NewColumn(parts[0], kind)); err != nil {
			return nil, 0, fmt.Errorf("%s: header: %w", name, err)
		}
	}
	// Rows are parsed fully into scratch before committing, so a bad
	// field never leaves a half-appended row behind.
	type cell struct {
		f float64
		i int64
		s string
	}
	row := make([]cell, len(t.Cols))
	line := 1 // header
	skipped := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			if opts.SkipBadRows {
				skipped++
				continue
			}
			return nil, skipped, fmt.Errorf("%s: line %d: %w", name, line, err)
		}
		if len(rec) != len(t.Cols) {
			if opts.SkipBadRows {
				skipped++
				continue
			}
			return nil, skipped, fmt.Errorf("%s: line %d: %d fields, want %d", name, line, len(rec), len(t.Cols))
		}
		bad := error(nil)
		for j, c := range t.Cols {
			switch c.Kind {
			case KindFloat:
				v, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					bad = fmt.Errorf("%s: line %d: column %s: %w", name, line, c.Name, err)
				}
				row[j].f = v
			case KindInt:
				v, err := strconv.ParseInt(rec[j], 10, 64)
				if err != nil {
					bad = fmt.Errorf("%s: line %d: column %s: %w", name, line, c.Name, err)
				}
				row[j].i = v
			default:
				row[j].s = rec[j]
			}
			if bad != nil {
				break
			}
		}
		if bad != nil {
			if opts.SkipBadRows {
				skipped++
				continue
			}
			return nil, skipped, bad
		}
		for j, c := range t.Cols {
			switch c.Kind {
			case KindFloat:
				c.AppendFloat(row[j].f)
			case KindInt:
				c.AppendInt(row[j].i)
			default:
				c.AppendString(row[j].s)
			}
		}
	}
	return t, skipped, t.Validate()
}

// SaveCSVFile writes the table to a file path.
func (t *Table) SaveCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile reads a table from a file path; the table is named after
// the file's base name sans extension unless name is non-empty.
func LoadCSVFile(name, path string) (*Table, error) {
	t, _, err := LoadCSVFileWith(name, path, CSVOptions{})
	return t, err
}

// LoadCSVFileWith reads a table from a file path with explicit
// malformed-row handling, reporting the number of skipped rows.
func LoadCSVFileWith(name, path string, opts CSVOptions) (*Table, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadCSVWith(name, f, opts)
}
