// Package storage implements the columnar in-memory table substrate for
// the SUDAF engine: typed columns (float64, int64, dictionary-encoded
// strings), row builders, selection vectors, and CSV import/export.
//
// Strings are dictionary-encoded at append time so that group-by keys and
// equality predicates operate on integer codes, which keeps the hash
// aggregation paths monomorphic and fast.
package storage

import (
	"bufio"
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Kind is a column type.
type Kind int

const (
	// KindFloat is a float64 measure column.
	KindFloat Kind = iota
	// KindInt is an int64 key or attribute column.
	KindInt
	// KindString is a dictionary-encoded string column.
	KindString
)

func (k Kind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "int"
	case KindString:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column is a typed column vector. Exactly one of F, I, Codes is
// populated, per Kind.
type Column struct {
	Name string
	Kind Kind

	F     []float64
	I     []int64
	Codes []int32
	dict  []string
	index map[string]int32

	statsOnce        sync.Once
	statMin, statMax float64
}

// NewColumn creates an empty column.
func NewColumn(name string, kind Kind) *Column {
	c := &Column{Name: name, Kind: kind}
	if kind == KindString {
		c.index = map[string]int32{}
	}
	return c
}

// Len returns the number of values.
func (c *Column) Len() int {
	switch c.Kind {
	case KindFloat:
		return len(c.F)
	case KindInt:
		return len(c.I)
	default:
		return len(c.Codes)
	}
}

// AppendFloat appends to a float column.
func (c *Column) AppendFloat(v float64) { c.F = append(c.F, v) }

// AppendInt appends to an int column.
func (c *Column) AppendInt(v int64) { c.I = append(c.I, v) }

// AppendString appends to a string column, interning through the dict.
func (c *Column) AppendString(s string) {
	code, ok := c.index[s]
	if !ok {
		code = int32(len(c.dict))
		c.dict = append(c.dict, s)
		c.index[s] = code
	}
	c.Codes = append(c.Codes, code)
}

// Code returns the dictionary code for s, or -1 if s never appears.
func (c *Column) Code(s string) int32 {
	if code, ok := c.index[s]; ok {
		return code
	}
	return -1
}

// StringAt returns the decoded string at row i.
func (c *Column) StringAt(i int) string { return c.dict[c.Codes[i]] }

// DictString decodes a dictionary code directly.
func (c *Column) DictString(code int32) string { return c.dict[code] }

// DictSize returns the number of distinct strings.
func (c *Column) DictSize() int { return len(c.dict) }

// AsFloat returns the value at row i coerced to float64 (string columns
// return their code; callers should not aggregate over strings).
func (c *Column) AsFloat(i int) float64 {
	switch c.Kind {
	case KindFloat:
		return c.F[i]
	case KindInt:
		return float64(c.I[i])
	default:
		return float64(c.Codes[i])
	}
}

// AsInt returns the value at row i as an int64 (floats truncate; strings
// return the dictionary code).
func (c *Column) AsInt(i int) int64 {
	switch c.Kind {
	case KindFloat:
		return int64(c.F[i])
	case KindInt:
		return c.I[i]
	default:
		return int64(c.Codes[i])
	}
}

// ValueString renders the value at row i for output.
func (c *Column) ValueString(i int) string {
	switch c.Kind {
	case KindFloat:
		return formatFloat(c.F[i])
	case KindInt:
		return strconv.FormatInt(c.I[i], 10)
	default:
		return c.StringAt(i)
	}
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// GatherFloats writes the values of rows rows[lo:hi] into out[:hi-lo],
// coerced to float64 (string columns yield their dictionary codes). The
// loop is monomorphic per kind — this is the chunk-gather primitive of
// the engine's batch kernels.
func (c *Column) GatherFloats(rows []int32, lo, hi int, out []float64) {
	switch c.Kind {
	case KindFloat:
		f := c.F
		for i := lo; i < hi; i++ {
			out[i-lo] = f[rows[i]]
		}
	case KindInt:
		v := c.I
		for i := lo; i < hi; i++ {
			out[i-lo] = float64(v[rows[i]])
		}
	default:
		codes := c.Codes
		for i := lo; i < hi; i++ {
			out[i-lo] = float64(codes[rows[i]])
		}
	}
}

// Slice returns a zero-copy view of rows [lo, hi): the view shares the
// underlying arrays (and dictionary) with the parent column. Appending to
// a slice view is not supported.
func (c *Column) Slice(lo, hi int) *Column {
	n := NewColumn(c.Name, c.Kind)
	switch c.Kind {
	case KindFloat:
		n.F = c.F[lo:hi:hi]
	case KindInt:
		n.I = c.I[lo:hi:hi]
	default:
		n.Codes = c.Codes[lo:hi:hi]
		n.dict = c.dict
		n.index = c.index
	}
	return n
}

// Renamed returns a view of the column under a new name, sharing the
// underlying data.
func (c *Column) Renamed(name string) *Column {
	n := NewColumn(name, c.Kind)
	n.F, n.I, n.Codes, n.dict = c.F, c.I, c.Codes, c.dict
	if c.index != nil {
		n.index = c.index
	}
	return n
}

// Stats returns the cached (min, max) of a numeric column, computing it
// on first use. String columns return (0, 0).
func (c *Column) Stats() (min, max float64) {
	c.statsOnce.Do(func() {
		c.statMin, c.statMax = math.Inf(1), math.Inf(-1)
		switch c.Kind {
		case KindFloat:
			for _, v := range c.F {
				if v < c.statMin {
					c.statMin = v
				}
				if v > c.statMax {
					c.statMax = v
				}
			}
		case KindInt:
			for _, v := range c.I {
				fv := float64(v)
				if fv < c.statMin {
					c.statMin = fv
				}
				if fv > c.statMax {
					c.statMax = fv
				}
			}
		default:
			c.statMin, c.statMax = 0, 0
		}
	})
	return c.statMin, c.statMax
}

// Table is a named collection of equal-length columns.
type Table struct {
	Name   string
	Cols   []*Column
	byName map[string]int
	// err is the first construction error (e.g. a duplicate column passed
	// to NewTable); surfaced by Err and Validate rather than panicking.
	err error
}

// NewTable creates a table with the given columns (which may be empty).
// A duplicate column name is recorded as a deferred error (see Err) and
// the duplicate is not added.
func NewTable(name string, cols ...*Column) *Table {
	t := &Table{Name: name, byName: map[string]int{}}
	for _, c := range cols {
		_ = t.AddColumn(c)
	}
	return t
}

// AddColumn registers a column. A duplicate name returns an error, leaves
// the table unchanged, and is also recorded as the table's deferred error
// so Validate (and catalog registration) reject the schema.
func (t *Table) AddColumn(c *Column) error {
	if _, dup := t.byName[c.Name]; dup {
		err := fmt.Errorf("table %s: duplicate column %s", t.Name, c.Name)
		if t.err == nil {
			t.err = err
		}
		return err
	}
	t.byName[c.Name] = len(t.Cols)
	t.Cols = append(t.Cols, c)
	return nil
}

// Err returns the first construction error recorded for the table.
func (t *Table) Err() error { return t.err }

// Col returns the named column, or nil.
func (t *Table) Col(name string) *Column {
	if i, ok := t.byName[name]; ok {
		return t.Cols[i]
	}
	return nil
}

// HasColumn reports whether the table has the named column.
func (t *Table) HasColumn(name string) bool {
	_, ok := t.byName[name]
	return ok
}

// NumRows returns the row count (0 for a table with no columns).
func (t *Table) NumRows() int {
	if len(t.Cols) == 0 {
		return 0
	}
	return t.Cols[0].Len()
}

// ColumnNames returns the column names in schema order.
func (t *Table) ColumnNames() []string {
	out := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		out[i] = c.Name
	}
	return out
}

// Slice returns a zero-copy view of rows [lo, hi) of every column. The
// view keeps the table's name and schema; see Column.Slice.
func (t *Table) Slice(lo, hi int) *Table {
	out := NewTable(t.Name)
	for _, c := range t.Cols {
		_ = out.AddColumn(c.Slice(lo, hi))
	}
	return out
}

// Validate checks the table has no deferred construction error and all
// columns have equal length.
func (t *Table) Validate() error {
	if t.err != nil {
		return t.err
	}
	n := t.NumRows()
	for _, c := range t.Cols {
		if c.Len() != n {
			return fmt.Errorf("table %s: column %s has %d rows, want %d", t.Name, c.Name, c.Len(), n)
		}
	}
	return nil
}

// WriteCSV writes the table with a typed header (name:kind per field).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(bufio.NewWriterSize(w, 1<<20))
	header := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		header[i] = c.Name + ":" + c.Kind.String()
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, len(t.Cols))
	for i := 0; i < t.NumRows(); i++ {
		for j, c := range t.Cols {
			row[j] = c.ValueString(i)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVOptions controls malformed-row handling during CSV import.
type CSVOptions struct {
	// SkipBadRows drops rows with the wrong field count or unparsable
	// values instead of failing the load; ReadCSVWith reports how many
	// rows were skipped.
	SkipBadRows bool
}

// ReadCSV reads a table written by WriteCSV, rejecting malformed rows
// with a line-numbered error.
func ReadCSV(name string, r io.Reader) (*Table, error) {
	t, _, err := ReadCSVWith(name, r, CSVOptions{})
	return t, err
}

// ReadCSVWith reads a table written by WriteCSV. Malformed rows (wrong
// field count, unparsable numeric fields) either fail with an error
// naming the offending line and column, or — with SkipBadRows — are
// dropped whole (never partially applied) and counted. Line numbers
// assume one record per line (quoted embedded newlines shift them).
func ReadCSVWith(name string, r io.Reader, opts CSVOptions) (*Table, int, error) {
	cr := csv.NewReader(bufio.NewReaderSize(r, 1<<20))
	cr.ReuseRecord = true
	cr.FieldsPerRecord = -1 // field counts are validated here, with line numbers
	header, err := cr.Read()
	if err != nil {
		return nil, 0, fmt.Errorf("%s: read header: %w", name, err)
	}
	t := NewTable(name)
	for _, h := range header {
		parts := strings.SplitN(h, ":", 2)
		kind := KindFloat
		if len(parts) == 2 {
			switch parts[1] {
			case "int":
				kind = KindInt
			case "string":
				kind = KindString
			case "float":
				kind = KindFloat
			default:
				return nil, 0, fmt.Errorf("%s: header: unknown column kind %q", name, parts[1])
			}
		}
		if err := t.AddColumn(NewColumn(parts[0], kind)); err != nil {
			return nil, 0, fmt.Errorf("%s: header: %w", name, err)
		}
	}
	// Rows are parsed fully into scratch before committing, so a bad
	// field never leaves a half-appended row behind.
	type cell struct {
		f float64
		i int64
		s string
	}
	row := make([]cell, len(t.Cols))
	line := 1 // header
	skipped := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		line++
		if err != nil {
			if opts.SkipBadRows {
				skipped++
				continue
			}
			return nil, skipped, fmt.Errorf("%s: line %d: %w", name, line, err)
		}
		if len(rec) != len(t.Cols) {
			if opts.SkipBadRows {
				skipped++
				continue
			}
			return nil, skipped, fmt.Errorf("%s: line %d: %d fields, want %d", name, line, len(rec), len(t.Cols))
		}
		bad := error(nil)
		for j, c := range t.Cols {
			switch c.Kind {
			case KindFloat:
				v, err := strconv.ParseFloat(rec[j], 64)
				if err != nil {
					bad = fmt.Errorf("%s: line %d: column %s: %w", name, line, c.Name, err)
				}
				row[j].f = v
			case KindInt:
				v, err := strconv.ParseInt(rec[j], 10, 64)
				if err != nil {
					bad = fmt.Errorf("%s: line %d: column %s: %w", name, line, c.Name, err)
				}
				row[j].i = v
			default:
				row[j].s = rec[j]
			}
			if bad != nil {
				break
			}
		}
		if bad != nil {
			if opts.SkipBadRows {
				skipped++
				continue
			}
			return nil, skipped, bad
		}
		for j, c := range t.Cols {
			switch c.Kind {
			case KindFloat:
				c.AppendFloat(row[j].f)
			case KindInt:
				c.AppendInt(row[j].i)
			default:
				c.AppendString(row[j].s)
			}
		}
	}
	return t, skipped, t.Validate()
}

// SaveCSVFile writes the table to a file path.
func (t *Table) SaveCSVFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := t.WriteCSV(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCSVFile reads a table from a file path; the table is named after
// the file's base name sans extension unless name is non-empty.
func LoadCSVFile(name, path string) (*Table, error) {
	t, _, err := LoadCSVFileWith(name, path, CSVOptions{})
	return t, err
}

// LoadCSVFileWith reads a table from a file path with explicit
// malformed-row handling, reporting the number of skipped rows.
func LoadCSVFileWith(name, path string, opts CSVOptions) (*Table, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadCSVWith(name, f, opts)
}
