// Package analyzer is a small rule-based planning pipeline in the style
// of go-mysql-server's sql/analyzer: a plan passes through a fixed
// sequence of phases, each phase a list of small, individually-testable
// rules. Rules are plain functions over a caller-defined plan type P —
// the framework owns only sequencing, cooperative cancellation between
// rules, error propagation and per-rule observation.
//
// The SUDAF query planner (internal/core) instantiates it with phases
// resolve → canonicalize → share → fuse → parallelize; the batch planner
// reuses the resolve/canonicalize front to unify states across queries.
package analyzer

import (
	"context"
	"errors"
	"fmt"
)

// ErrStop is returned by a rule to halt the pipeline early without
// error: remaining rules and phases are skipped and Run returns nil.
// Rules use it when a plan is already fully decided (e.g. a query
// answered entirely from cache needs no fuse/parallelize work).
var ErrStop = errors.New("analyzer: stop")

// Rule is one atomic planning step. Apply mutates the plan in place; a
// returned error aborts the pipeline (ErrStop aborts it successfully).
type Rule[P any] struct {
	Name  string
	Apply func(ctx context.Context, p P) error
}

// Phase is a named list of rules applied in order.
type Phase[P any] struct {
	Name  string
	Rules []Rule[P]
}

// Observer is notified after every rule application with the phase and
// rule names and the rule's outcome (nil, ErrStop, or a real error).
// Nil observers are allowed; observation must not mutate the plan.
type Observer func(phase, rule string, err error)

// Pipeline is a fixed sequence of phases.
type Pipeline[P any] struct {
	Phases []Phase[P]
}

// Run applies every phase's rules in order. Between rules it polls ctx,
// so a canceled query stops at the next rule boundary. The first real
// error aborts and is returned wrapped with the phase/rule position;
// ErrStop aborts cleanly and Run returns nil.
func (pl *Pipeline[P]) Run(ctx context.Context, p P, obs Observer) error {
	for _, ph := range pl.Phases {
		for _, r := range ph.Rules {
			if err := ctx.Err(); err != nil {
				return err
			}
			err := r.Apply(ctx, p)
			if obs != nil {
				obs(ph.Name, r.Name, err)
			}
			if err != nil {
				if errors.Is(err, ErrStop) {
					return nil
				}
				return fmt.Errorf("analyzer %s/%s: %w", ph.Name, r.Name, err)
			}
		}
	}
	return nil
}

// Rule returns the named rule (phase-qualified as "phase/rule"), for
// tests that exercise one rule in isolation.
func (pl *Pipeline[P]) Rule(phase, rule string) (Rule[P], bool) {
	for _, ph := range pl.Phases {
		if ph.Name != phase {
			continue
		}
		for _, r := range ph.Rules {
			if r.Name == rule {
				return r, true
			}
		}
	}
	return Rule[P]{}, false
}

// PhaseNames lists the pipeline's phase names in order.
func (pl *Pipeline[P]) PhaseNames() []string {
	out := make([]string, len(pl.Phases))
	for i, ph := range pl.Phases {
		out[i] = ph.Name
	}
	return out
}
