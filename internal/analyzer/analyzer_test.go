package analyzer

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

type testPlan struct {
	log []string
}

func appendRule(name string) Rule[*testPlan] {
	return Rule[*testPlan]{Name: name, Apply: func(_ context.Context, p *testPlan) error {
		p.log = append(p.log, name)
		return nil
	}}
}

func testPipeline(extra ...Rule[*testPlan]) *Pipeline[*testPlan] {
	return &Pipeline[*testPlan]{Phases: []Phase[*testPlan]{
		{Name: "resolve", Rules: []Rule[*testPlan]{appendRule("a"), appendRule("b")}},
		{Name: "fuse", Rules: append([]Rule[*testPlan]{appendRule("c")}, extra...)},
	}}
}

func TestRunAppliesRulesInOrder(t *testing.T) {
	p := &testPlan{}
	if err := testPipeline().Run(context.Background(), p, nil); err != nil {
		t.Fatal(err)
	}
	want := "[a b c]"
	if got := fmt.Sprint(p.log); got != want {
		t.Fatalf("rule order = %s, want %s", got, want)
	}
}

func TestRunStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	bad := Rule[*testPlan]{Name: "bad", Apply: func(_ context.Context, p *testPlan) error {
		return boom
	}}
	pl := &Pipeline[*testPlan]{Phases: []Phase[*testPlan]{
		{Name: "resolve", Rules: []Rule[*testPlan]{appendRule("a"), bad, appendRule("never")}},
	}}
	p := &testPlan{}
	err := pl.Run(context.Background(), p, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Position is part of the error, so failures name the rule.
	if got := err.Error(); got != "analyzer resolve/bad: boom" {
		t.Fatalf("err text = %q", got)
	}
	if fmt.Sprint(p.log) != "[a]" {
		t.Fatalf("rules after the failure ran: %v", p.log)
	}
}

func TestErrStopHaltsCleanly(t *testing.T) {
	stop := Rule[*testPlan]{Name: "stop", Apply: func(_ context.Context, p *testPlan) error {
		p.log = append(p.log, "stop")
		return ErrStop
	}}
	pl := &Pipeline[*testPlan]{Phases: []Phase[*testPlan]{
		{Name: "resolve", Rules: []Rule[*testPlan]{appendRule("a"), stop}},
		{Name: "fuse", Rules: []Rule[*testPlan]{appendRule("never")}},
	}}
	p := &testPlan{}
	if err := pl.Run(context.Background(), p, nil); err != nil {
		t.Fatalf("ErrStop must not surface as an error, got %v", err)
	}
	if fmt.Sprint(p.log) != "[a stop]" {
		t.Fatalf("log = %v", p.log)
	}
}

func TestRunPollsContextBetweenRules(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	trip := Rule[*testPlan]{Name: "trip", Apply: func(_ context.Context, p *testPlan) error {
		p.log = append(p.log, "trip")
		cancel() // cancel mid-pipeline; the next rule boundary must stop
		return nil
	}}
	pl := &Pipeline[*testPlan]{Phases: []Phase[*testPlan]{
		{Name: "resolve", Rules: []Rule[*testPlan]{trip, appendRule("never")}},
	}}
	p := &testPlan{}
	err := pl.Run(ctx, p, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fmt.Sprint(p.log) != "[trip]" {
		t.Fatalf("log = %v", p.log)
	}
}

func TestObserverSeesEveryRuleOutcome(t *testing.T) {
	var seen []string
	obs := func(phase, rule string, err error) {
		seen = append(seen, fmt.Sprintf("%s/%s:%v", phase, rule, err))
	}
	if err := testPipeline().Run(context.Background(), &testPlan{}, obs); err != nil {
		t.Fatal(err)
	}
	want := "[resolve/a:<nil> resolve/b:<nil> fuse/c:<nil>]"
	if got := fmt.Sprint(seen); got != want {
		t.Fatalf("observer saw %s, want %s", got, want)
	}
}

func TestRuleLookupAndPhaseNames(t *testing.T) {
	pl := testPipeline()
	if got := fmt.Sprint(pl.PhaseNames()); got != "[resolve fuse]" {
		t.Fatalf("PhaseNames = %s", got)
	}
	r, ok := pl.Rule("fuse", "c")
	if !ok || r.Name != "c" {
		t.Fatalf("Rule lookup failed: %v %v", r, ok)
	}
	if _, ok := pl.Rule("fuse", "zzz"); ok {
		t.Fatal("lookup of unknown rule must fail")
	}
}
