package sudaf_test

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sudaf"
)

// demoEngine builds a small engine with one table.
func demoEngine(t *testing.T) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 2})
	rng := rand.New(rand.NewSource(5))
	tbl := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	for i := 0; i < 10_000; i++ {
		tbl.Col("region").AppendInt(int64(rng.Intn(5)))
		tbl.Col("price").AppendFloat(1 + rng.Float64()*9)
	}
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestFacadeEndToEnd(t *testing.T) {
	eng := demoEngine(t)
	if err := eng.DefineUDAF("rms", []string{"x"}, "sqrt(sum(x^2)/count())"); err != nil {
		t.Fatal(err)
	}
	form, ok := eng.ExplainUDAF("rms")
	if !ok || !strings.Contains(form, "F=") {
		t.Fatalf("Explain = %q, %v", form, ok)
	}
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		res, err := eng.Query("SELECT region, rms(price) FROM sales GROUP BY region ORDER BY region", mode)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Table.NumRows() != 5 {
			t.Fatalf("%v: %d rows", mode, res.Table.NumRows())
		}
	}
	// rms cached {count, Σx²}; stddev additionally needs Σx, so it scans
	// once — after which variance is a full cache hit.
	if _, err := eng.Query("SELECT region, stddev(price) FROM sales GROUP BY region", sudaf.Share); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT region, variance(price) FROM sales GROUP BY region", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 0 {
		t.Errorf("variance should be served from cache, scanned %d", res.RowsScanned)
	}
	st := eng.CacheStats()
	if st.Lookups == 0 {
		t.Error("no cache lookups recorded")
	}
	if dump := eng.SymbolicSpaceDump(); !strings.Contains(dump, "saggs_2") {
		t.Errorf("space dump: %q", dump[:40])
	}
}

func TestFacadeCSVRoundTrip(t *testing.T) {
	eng := demoEngine(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	res, err := eng.Query("SELECT region, avg(price) m FROM sales GROUP BY region ORDER BY region", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Table.SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := sudaf.LoadCSV("roundtrip", path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != res.Table.NumRows() {
		t.Fatalf("rows: %d vs %d", back.NumRows(), res.Table.NumRows())
	}
	for i := 0; i < back.NumRows(); i++ {
		a := res.Table.Col("m").F[i]
		b := back.Col("m").F[i]
		if math.Abs(a-b) > 1e-4*(1+math.Abs(a)) {
			t.Fatalf("row %d: %v vs %v", i, a, b)
		}
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSketchUDAF(t *testing.T) {
	eng := demoEngine(t)
	if err := eng.DefineSketchUDAF("p10", 8, 0.1); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query("SELECT p10(price) FROM sales", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	v := res.Table.Cols[0].F[0]
	// Uniform(1,10): p10 ≈ 1.9; the sketch should land in [1, 4].
	if v < 1 || v > 4 {
		t.Errorf("p10 estimate %v out of range", v)
	}
}

func TestFacadeViews(t *testing.T) {
	eng := demoEngine(t)
	if err := eng.Materialize("v", "SELECT region, avg(price) FROM sales GROUP BY region"); err != nil {
		t.Fatal(err)
	}
	// A coarser query (grand total) rolls up from the view.
	res, err := eng.Query("SELECT avg(price) FROM sales", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedView != "v" {
		t.Errorf("expected roll-up from v, got %q (rows %d)", res.UsedView, res.RowsScanned)
	}
	eng.DropView("v")
	eng.ClearCache()
	res2, err := eng.Query("SELECT avg(price) FROM sales", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if res2.UsedView != "" {
		t.Error("view should be gone")
	}
}

func TestFacadeErrors(t *testing.T) {
	eng := demoEngine(t)
	if _, err := eng.Query("SELECT nope(price) FROM sales", sudaf.Rewrite); err == nil {
		t.Error("unknown aggregate should fail")
	}
	if _, err := eng.Query("SELECT avg(price) FROM missing", sudaf.Rewrite); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := eng.Query("SELECT FROM", sudaf.Rewrite); err == nil {
		t.Error("syntax error should fail")
	}
}
