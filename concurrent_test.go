package sudaf_test

// The concurrent stress suite: N goroutines issuing mixed
// Baseline/Rewrite/Share queries against one engine, asserting results
// stay bit-identical to a serial run and that cache/engine counters stay
// consistent. Runs in CI's race jobs (see .github/workflows/ci.yml).
//
// Bit-identity under concurrency holds because every serving path in the
// workload below is floating-point-exact: exact state-key hits return
// the deterministic morsel-merged values any recomputation would
// produce, and the only sharing rewritings reachable are linear scalings
// by powers of two (exact). Workloads whose rewritings are only
// approximately equal (e.g. Σln x reconstructed as ln Πx) are exercised
// separately without value assertions (TestConcurrentSharingPaths).

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sudaf"
)

// concTable builds the shared dataset: 40 interleaved groups, strictly
// positive values (so prod-family states cache directly).
func concTable(rows int) *sudaf.Table {
	rng := rand.New(rand.NewSource(42))
	tbl := sudaf.NewTable("sales",
		sudaf.NewColumn("g", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float),
		sudaf.NewColumn("qty", sudaf.Float))
	for i := 0; i < rows; i++ {
		tbl.Col("g").AppendInt(int64(i % 40))
		tbl.Col("price").AppendFloat(0.5 + rng.Float64()*2)
		tbl.Col("qty").AppendFloat(float64(rng.Intn(10) + 1))
	}
	return tbl
}

// concTable2 is a second table with distinct column names (the engine
// resolves columns by globally unique names), used for view roll-ups.
func concTable2(rows int) *sudaf.Table {
	rng := rand.New(rand.NewSource(43))
	tbl := sudaf.NewTable("sales2",
		sudaf.NewColumn("b", sudaf.Int),
		sudaf.NewColumn("c", sudaf.Int),
		sudaf.NewColumn("w", sudaf.Float))
	for i := 0; i < rows; i++ {
		tbl.Col("b").AppendInt(int64(i % 10))
		tbl.Col("c").AppendInt(int64(i % 7))
		tbl.Col("w").AppendFloat(0.5 + rng.Float64()*2)
	}
	return tbl
}

func concEngine(t testing.TB, opts sudaf.Options) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(opts)
	if err := eng.Register(concTable(24_000)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(concTable2(24_000)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// workItem is one query of the mixed workload.
type workItem struct {
	sql  string
	mode sudaf.Mode
}

// mixedWorkload is the bit-identity workload: every Share-mode serving
// path among these aggregates is fp-exact (exact state hits, or linear
// power-of-two rewritings).
func mixedWorkload() []workItem {
	return []workItem{
		{"SELECT g, avg(price), stddev(price) FROM sales GROUP BY g ORDER BY g", sudaf.Baseline},
		{"SELECT g, qm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Baseline},
		{"SELECT g, qm(price), var(price) FROM sales GROUP BY g ORDER BY g", sudaf.Rewrite},
		{"SELECT g, min(price), max(price), count(*) FROM sales GROUP BY g", sudaf.Rewrite},
		{"SELECT g, qm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, stddev(price), avg(price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, var(price), cm(price), apm(price) FROM sales GROUP BY g", sudaf.Share},
		{"SELECT g, sum(price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, sum(2*price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, gm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT count(*), sum(qty) FROM sales", sudaf.Share},
	}
}

// sameTable demands bit-for-bit equality of two result tables.
func sameTable(t *testing.T, label string, want, got *sudaf.Table) {
	t.Helper()
	if len(want.Cols) != len(got.Cols) {
		t.Fatalf("%s: %d vs %d columns", label, len(want.Cols), len(got.Cols))
	}
	if want.NumRows() != got.NumRows() {
		t.Fatalf("%s: %d vs %d rows", label, want.NumRows(), got.NumRows())
	}
	for ci, wc := range want.Cols {
		gc := got.Cols[ci]
		if wc.Name != gc.Name || wc.Kind != gc.Kind {
			t.Fatalf("%s: column %d is %s/%v vs %s/%v", label, ci, wc.Name, wc.Kind, gc.Name, gc.Kind)
		}
		for i := 0; i < want.NumRows(); i++ {
			switch wc.Kind {
			case sudaf.String:
				if wc.StringAt(i) != gc.StringAt(i) {
					t.Fatalf("%s: col %s row %d: %q vs %q", label, wc.Name, i, wc.StringAt(i), gc.StringAt(i))
				}
			default:
				wv, gv := wc.AsFloat(i), gc.AsFloat(i)
				if math.Float64bits(wv) != math.Float64bits(gv) && !(math.IsNaN(wv) && math.IsNaN(gv)) {
					t.Fatalf("%s: col %s row %d: %v (%#x) vs %v (%#x)",
						label, wc.Name, i, wv, math.Float64bits(wv), gv, math.Float64bits(gv))
				}
			}
		}
	}
}

// TestConcurrentQueriesBitIdentical is the core stress assertion: N
// goroutines hammering the mixed workload produce, for every query,
// exactly the table a serial run produces — regardless of interleaving,
// cache warmth or which goroutine populated which state.
func TestConcurrentQueriesBitIdentical(t *testing.T) {
	workload := mixedWorkload()

	// Serial reference run on its own engine.
	serial := concEngine(t, sudaf.Options{Workers: 2})
	want := make([]*sudaf.Table, len(workload))
	for i, w := range workload {
		res, err := serial.Query(w.sql, w.mode)
		if err != nil {
			t.Fatalf("serial %q: %v", w.sql, err)
		}
		want[i] = res.Table
	}

	// Concurrent run: G goroutines × R rounds, each round a random
	// permutation of the workload.
	eng := concEngine(t, sudaf.Options{Workers: 2})
	const goroutines = 6
	const rounds = 3
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + gi)))
			for r := 0; r < rounds; r++ {
				for _, i := range rng.Perm(len(workload)) {
					w := workload[i]
					res, err := eng.Query(w.sql, w.mode)
					if err != nil {
						errCh <- err
						return
					}
					// Compare off the main test goroutine: collect a
					// mismatch as an error instead of t.Fatal.
					if res.Table.NumRows() != want[i].NumRows() {
						errCh <- errors.New("row count diverged for " + w.sql)
						return
					}
					for ci, wc := range want[i].Cols {
						gc := res.Table.Cols[ci]
						for row := 0; row < want[i].NumRows(); row++ {
							wv, gv := wc.AsFloat(row), gc.AsFloat(row)
							if math.Float64bits(wv) != math.Float64bits(gv) && !(math.IsNaN(wv) && math.IsNaN(gv)) {
								errCh <- errors.New("value diverged from serial for " + w.sql)
								return
							}
						}
					}
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiescent counter consistency: every lookup has exactly one outcome,
	// and the cache's structural invariants hold.
	cs := eng.CacheStats()
	if cs.Lookups != cs.ExactHits+cs.SharedHits+cs.SignHits+cs.Misses {
		t.Fatalf("lost stats increments: %+v", cs)
	}
	if err := eng.Session().Cache().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	es := eng.Stats()
	wantQueries := int64(goroutines * rounds * len(workload))
	if es.QueriesCompleted != wantQueries || es.QueriesFailed != 0 {
		t.Fatalf("engine stats: completed=%d failed=%d, want %d/0", es.QueriesCompleted, es.QueriesFailed, wantQueries)
	}

	// And a final serial pass on the concurrent engine still agrees —
	// whatever the cache now holds serves the same values.
	for i, w := range workload {
		res, err := eng.Query(w.sql, w.mode)
		if err != nil {
			t.Fatal(err)
		}
		sameTable(t, "post-stress "+w.sql, want[i], res.Table)
	}
}

// TestConcurrentSharingPaths exercises the approximate sharing paths
// (sign-split reconstruction, log/exp rewritings) under concurrency with
// chaos — ClearCache and cache corruption mid-flight. Values here are
// interleaving-dependent by design (ln Πx vs Σln x differ in ulps), so
// the assertions are: queries never fail, reported values are close to
// the serial answer, and the cache's invariants survive.
func TestConcurrentSharingPaths(t *testing.T) {
	workload := []workItem{
		{"SELECT g, gm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, sum(ln(price)) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, logsumexp(ln(price)) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
		{"SELECT g, hm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Share},
	}
	serial := concEngine(t, sudaf.Options{Workers: 2})
	want := make([]*sudaf.Table, len(workload))
	for i, w := range workload {
		res, err := serial.Query(w.sql, w.mode)
		if err != nil {
			t.Fatalf("serial %q: %v", w.sql, err)
		}
		want[i] = res.Table
	}

	eng := concEngine(t, sudaf.Options{Workers: 2})
	const goroutines = 5
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines+2)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(gi)))
			for r := 0; r < 8; r++ {
				i := rng.Intn(len(workload))
				w := workload[i]
				res, err := eng.Query(w.sql, w.mode)
				if err != nil {
					errCh <- err
					return
				}
				for ci, wc := range want[i].Cols {
					gc := res.Table.Cols[ci]
					for row := 0; row < want[i].NumRows(); row++ {
						wv, gv := wc.AsFloat(row), gc.AsFloat(row)
						if math.Abs(wv-gv) > 1e-9*math.Max(1, math.Abs(wv)) {
							errCh <- errors.New("value drifted beyond tolerance for " + w.sql)
							return
						}
					}
				}
			}
		}(gi)
	}
	// Chaos alongside: cache clears and corruption. Both must degrade to
	// recomputation, never to failure.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 6; r++ {
			eng.ClearCache()
			eng.Session().Cache().CorruptEntryForTest("")
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if err := eng.Session().Cache().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentViewRollup pins that roll-up rewriting from a static
// materialized view is deterministic under concurrency: concurrent
// Rewrite-mode roll-ups equal the serial roll-up bit for bit.
func TestConcurrentViewRollup(t *testing.T) {
	const viewSQL = "SELECT b, c, qm(w), stddev(w) FROM sales2 GROUP BY b, c"
	const rollupSQL = "SELECT b, qm(w), stddev(w) FROM sales2 GROUP BY b ORDER BY b"

	serial := concEngine(t, sudaf.Options{Workers: 2})
	if err := serial.Materialize("v_bc", viewSQL); err != nil {
		t.Fatal(err)
	}
	serial.ClearCache() // isolate the view path from the state cache
	wantRes, err := serial.Query(rollupSQL, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if wantRes.UsedView != "v_bc" {
		t.Fatalf("serial roll-up did not use the view (used %q)", wantRes.UsedView)
	}

	eng := concEngine(t, sudaf.Options{Workers: 2})
	if err := eng.Materialize("v_bc", viewSQL); err != nil {
		t.Fatal(err)
	}
	eng.ClearCache()
	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	for gi := 0; gi < 6; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				res, err := eng.Query(rollupSQL, sudaf.Rewrite)
				if err != nil {
					errCh <- err
					return
				}
				if res.UsedView != "v_bc" {
					errCh <- errors.New("concurrent roll-up did not use the view")
					return
				}
				for ci, wc := range wantRes.Table.Cols {
					gc := res.Table.Cols[ci]
					for row := 0; row < wantRes.Table.NumRows(); row++ {
						if math.Float64bits(wc.AsFloat(row)) != math.Float64bits(gc.AsFloat(row)) {
							errCh <- errors.New("roll-up diverged from serial")
							return
						}
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestAdmissionControl checks MaxConcurrentQueries: a fleet larger than
// the cap completes fully, and a caller whose context is already done
// fails with ErrCanceled instead of queueing forever.
func TestAdmissionControl(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2, MaxConcurrentQueries: 2})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for gi := 0; gi < 8; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := eng.Query("SELECT g, qm(price) FROM sales GROUP BY g", sudaf.Share); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if es := eng.Stats(); es.QueriesCompleted != 8 || es.QueriesFailed != 0 {
		t.Fatalf("engine stats after admission-controlled fleet: %+v", es)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, "SELECT count(*) FROM sales", sudaf.Share)
	if !errors.Is(err, sudaf.ErrCanceled) {
		t.Fatalf("pre-canceled context: got %v, want ErrCanceled", err)
	}
}

// ---- focused regression tests for races fixed in this change ----
// Each test targets one pre-existing data race flushed out by the stress
// suite; they are meaningful primarily under -race.

// TestRaceDefineUDAFDuringQueries: the UDAF registry (isAgg reads during
// parse/plan) raced with DefineUDAF writes.
func TestRaceDefineUDAFDuringQueries(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := []string{"rm_a", "rm_b", "rm_c"}[i%3]
			if err := eng.DefineUDAF(name, []string{"x"}, "sqrt(sum(x^2)/count())"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 20; r++ {
		if _, err := eng.Query("SELECT g, qm(price) FROM sales GROUP BY g", sudaf.Rewrite); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRaceClearCacheDuringQueries: ClearCache swapped the cache pointer
// mid-query; queries now snapshot it at admission.
func TestRaceClearCacheDuringQueries(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				eng.ClearCache()
				eng.ResetCacheStats()
				_ = eng.CacheStats()
			}
		}
	}()
	for r := 0; r < 20; r++ {
		if _, err := eng.Query("SELECT g, stddev(price) FROM sales GROUP BY g", sudaf.Share); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestRaceKernelToggleDuringQueries: the vectorized-kernel knob was a
// plain field written mid-flight; it is now atomic and snapshotted once
// per aggregation (results identical either way).
func TestRaceKernelToggleDuringQueries(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2})
	ref, err := eng.Query("SELECT g, qm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		on := false
		for {
			select {
			case <-stop:
				return
			default:
				eng.SetVectorizedKernels(on)
				on = !on
			}
		}
	}()
	for r := 0; r < 20; r++ {
		res, err := eng.Query("SELECT g, qm(price) FROM sales GROUP BY g ORDER BY g", sudaf.Rewrite)
		if err != nil {
			t.Fatal(err)
		}
		sameTable(t, "kernel toggle", ref.Table, res.Table)
	}
	close(stop)
	wg.Wait()
	eng.SetVectorizedKernels(true)
}

// TestRaceViewToggleDuringQueries: the view registry and the
// EnableViewRewriting flag were read unlocked on the query path.
func TestRaceViewToggleDuringQueries(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2})
	if err := eng.Materialize("v_keep", "SELECT b, c, qm(w) FROM sales2 GROUP BY b, c"); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		on := false
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			eng.EnableViews(on)
			on = !on
			if i%3 == 0 {
				if err := eng.Materialize("v_churn", "SELECT b, qm(w) FROM sales2 GROUP BY b"); err != nil {
					t.Error(err)
					return
				}
				eng.DropView("v_churn")
			}
		}
	}()
	for r := 0; r < 15; r++ {
		// Either the roll-up or the base path may serve this — both are
		// correct; the race is the point.
		if _, err := eng.Query("SELECT b, qm(w) FROM sales2 GROUP BY b", sudaf.Rewrite); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	eng.EnableViews(true)
}

// TestRaceSubqueryTempAliases: materialized subqueries used to register
// their temp tables in the shared session catalog, so two concurrent
// queries using the same alias could clobber (or drop) each other's
// derived table. Temps now live in per-query catalog overlays.
func TestRaceSubqueryTempAliases(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2})
	const q = "SELECT avg(p2) FROM (SELECT price*2 p2 FROM sales) t"
	ref, err := eng.Query(q, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 6)
	for gi := 0; gi < 6; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				res, err := eng.Query(q, sudaf.Rewrite)
				if err != nil {
					errCh <- err
					return
				}
				if math.Float64bits(res.Table.Cols[0].AsFloat(0)) != math.Float64bits(ref.Table.Cols[0].AsFloat(0)) {
					errCh <- errors.New("subquery result diverged under alias contention")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// The shared catalog must not have leaked the temp alias.
	if eng.Session().Catalog().Has("t") {
		t.Fatal("subquery temp table leaked into the session catalog")
	}
}

// TestConcurrentQueryBatches: the streaming cursor entrypoint shares the
// concurrent query path.
func TestConcurrentQueryBatches(t *testing.T) {
	eng := concEngine(t, sudaf.Options{Workers: 2})
	var wg sync.WaitGroup
	errCh := make(chan error, 4)
	for gi := 0; gi < 4; gi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 4; r++ {
				cur, err := eng.QueryBatches(context.Background(), "SELECT g, sum(price) FROM sales GROUP BY g", sudaf.Share)
				if err != nil {
					errCh <- err
					return
				}
				rows := 0
				for cur.Next() {
					rows += cur.Batch().NumRows()
				}
				if err := cur.Err(); err != nil {
					errCh <- err
					return
				}
				if rows != 40 {
					errCh <- errors.New("unexpected row count from batch cursor")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}
