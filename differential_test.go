package sudaf_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"sudaf"
)

// advEngine builds an engine over adversarial data: whole groups of NaN,
// NaN mixed into normal values, ±Inf, signed zeros, negatives, and
// near-one values (so products stay finite). Groups interleave so every
// execution batch sees several of them.
func advEngine(t *testing.T) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	rng := rand.New(rand.NewSource(7))
	tbl := sudaf.NewTable("adv",
		sudaf.NewColumn("g", sudaf.Int),
		sudaf.NewColumn("v", sudaf.Float))
	for i := 0; i < 9_973; i++ {
		g := i % 8
		var v float64
		switch g {
		case 0:
			v = math.NaN()
		case 1:
			if rng.Intn(3) == 0 {
				v = math.NaN()
			} else {
				v = rng.Float64()*4 - 2
			}
		case 2:
			v = math.Inf(1 - 2*rng.Intn(2))
		case 3:
			v = rng.Float64()*200 - 100
		case 4:
			v = math.Copysign(0, float64(1-2*rng.Intn(2)))
		case 5:
			v = 42.5
		case 6:
			v = 0.999 + rng.Float64()*0.002
		default:
			v = rng.Float64() * 1e-100
		}
		tbl.Col("g").AppendInt(int64(g))
		tbl.Col("v").AppendFloat(v)
	}
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if err := eng.DefineUDAF("pr", []string{"x"}, "prod(x)"); err != nil {
		t.Fatal(err)
	}
	return eng
}

// sameValue compares aggregate outputs across execution strategies:
// NaN ≡ NaN, ±Inf must match in sign, finite values must agree to a
// relative 1e-9 (different but equivalent computation orders may round
// differently).
func sameValue(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// TestModesAgreeOnAdversarialData is the Baseline ≡ Rewrite ≡ Share
// differential from the issue: on NaN/±Inf/empty-group data the three
// execution strategies (interpreted UDAFs, compiled batch kernels, and
// compiled kernels with state sharing) must return the same rows.
func TestModesAgreeOnAdversarialData(t *testing.T) {
	queries := []string{
		"SELECT g, min(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT g, max(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT g, pr(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT g, sum(v), avg(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT g, qm(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT min(v), max(v), pr(v) FROM adv",
		// Empty selection: the grand aggregate over zero rows must yield
		// the merge identities (+Inf/-Inf/1) in every mode.
		"SELECT min(v), max(v), pr(v) FROM adv WHERE g > 100",
	}
	for _, sql := range queries {
		// Fresh engines per query so Share's cache can't leak state
		// between differential cases.
		base := advEngine(t)
		rew := advEngine(t)
		shr := advEngine(t)
		rb, err := base.Query(sql, sudaf.Baseline)
		if err != nil {
			t.Fatalf("baseline %q: %v", sql, err)
		}
		rr, err := rew.Query(sql, sudaf.Rewrite)
		if err != nil {
			t.Fatalf("rewrite %q: %v", sql, err)
		}
		rs, err := shr.Query(sql, sudaf.Share)
		if err != nil {
			t.Fatalf("share %q: %v", sql, err)
		}
		for _, pair := range []struct {
			label string
			other *sudaf.Result
		}{{"rewrite", rr}, {"share", rs}} {
			if pair.other.Table.NumRows() != rb.Table.NumRows() {
				t.Fatalf("%q: %s has %d rows, baseline %d", sql, pair.label,
					pair.other.Table.NumRows(), rb.Table.NumRows())
			}
			for c := range rb.Table.Cols {
				for i := 0; i < rb.Table.NumRows(); i++ {
					a := rb.Table.Cols[c].AsFloat(i)
					b := pair.other.Table.Cols[c].AsFloat(i)
					if !sameValue(a, b) {
						t.Errorf("%q col %d row %d: baseline %v, %s %v",
							sql, c, i, a, pair.label, b)
					}
				}
			}
		}
	}
}

// TestVectorKernelToggleBitIdentical pins the stronger property inside
// one strategy: Rewrite with batch kernels and Rewrite forced onto the
// tuple-at-a-time path must agree bit for bit (NaN ≡ NaN), because both
// fold rows in the same per-group order.
func TestVectorKernelToggleBitIdentical(t *testing.T) {
	queries := []string{
		"SELECT g, min(v), max(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT g, pr(v), sum(v), qm(v) FROM adv GROUP BY g ORDER BY g",
		"SELECT min(v), max(v), pr(v) FROM adv WHERE g > 100",
	}
	for _, sql := range queries {
		vec := advEngine(t)
		tup := advEngine(t)
		tup.SetVectorizedKernels(false)
		rv, err := vec.Query(sql, sudaf.Rewrite)
		if err != nil {
			t.Fatalf("vec %q: %v", sql, err)
		}
		rt, err := tup.Query(sql, sudaf.Rewrite)
		if err != nil {
			t.Fatalf("tuple %q: %v", sql, err)
		}
		if rv.Table.NumRows() != rt.Table.NumRows() {
			t.Fatalf("%q: %d vs %d rows", sql, rv.Table.NumRows(), rt.Table.NumRows())
		}
		for c := range rv.Table.Cols {
			for i := 0; i < rv.Table.NumRows(); i++ {
				a, b := rv.Table.Cols[c].AsFloat(i), rt.Table.Cols[c].AsFloat(i)
				if math.Float64bits(a) != math.Float64bits(b) &&
					!(math.IsNaN(a) && math.IsNaN(b)) {
					t.Errorf("%q col %d row %d: vec %v (%#x), tuple %v (%#x)",
						sql, c, i, a, math.Float64bits(a), b, math.Float64bits(b))
				}
			}
		}
	}
}

// TestStrictPolicyAgreesAcrossModes: under NumericStrict a NaN aggregate
// (an all-NaN group) must fail with ErrNumericFault in every mode — the
// batch kernels may not change which queries error.
func TestStrictPolicyAgreesAcrossModes(t *testing.T) {
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		eng := advEngine(t)
		eng.SetNumericPolicy(sudaf.NumericStrict)
		_, err := eng.Query("SELECT g, min(v) FROM adv GROUP BY g", mode)
		if err == nil {
			t.Fatalf("mode %v: all-NaN group should fail under strict policy", mode)
		}
		if !errors.Is(err, sudaf.ErrNumericFault) {
			t.Errorf("mode %v: error %v does not wrap ErrNumericFault", mode, err)
		}
	}
	// Permissive: same query succeeds and reports the faults instead.
	eng := advEngine(t)
	res, err := eng.Query("SELECT g, min(v) FROM adv GROUP BY g", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumericFaults == 0 {
		t.Error("permissive run should count numeric faults")
	}
}

// TestTypedSentinelErrors covers the errors.Is contract documented on
// Query/QueryContext/QueryBatches.
func TestTypedSentinelErrors(t *testing.T) {
	eng := advEngine(t)
	if _, err := eng.Query("SELECT avg(v) FROM nosuch", sudaf.Rewrite); !errors.Is(err, sudaf.ErrUnknownTable) {
		t.Errorf("unknown table: %v", err)
	}
	// prod has aggregate syntax but is not a SQL built-in: usable inside
	// UDAF definitions only, so a direct call is an unknown aggregate.
	if _, err := eng.Query("SELECT g, prod(v) FROM adv GROUP BY g", sudaf.Rewrite); !errors.Is(err, sudaf.ErrUnknownUDAF) {
		t.Errorf("unknown aggregate: %v", err)
	}
	if _, err := eng.Query("SELECT prod(v) FROM adv", sudaf.Baseline); !errors.Is(err, sudaf.ErrUnknownUDAF) {
		t.Errorf("unknown aggregate (baseline): %v", err)
	}
	if _, err := eng.Query("SELECT FROM WHERE", sudaf.Rewrite); !errors.Is(err, sudaf.ErrParse) {
		t.Errorf("parse error: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, "SELECT avg(v) FROM adv", sudaf.Rewrite)
	if !errors.Is(err, sudaf.ErrCanceled) {
		t.Errorf("canceled: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("canceled should still match context.Canceled: %v", err)
	}
	if _, err := eng.QueryBatches(ctx, "SELECT avg(v) FROM adv", sudaf.Rewrite); !errors.Is(err, sudaf.ErrCanceled) {
		t.Errorf("QueryBatches canceled: %v", err)
	}
}
