package sudaf_test

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sudaf"
	"sudaf/internal/faultinject"
)

// negEngine builds an engine whose price column is strictly negative, so
// sqrt(sum(price)) is a numeric domain fault in every group.
func negEngine(t *testing.T) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 2})
	tbl := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	for i := 0; i < 1000; i++ {
		tbl.Col("region").AppendInt(int64(i % 4))
		tbl.Col("price").AppendFloat(-1 - float64(i%10))
	}
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	if err := eng.DefineUDAF("rootsum", []string{"x"}, "sqrt(sum(x))"); err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestNumericPolicyEndToEnd(t *testing.T) {
	const q = "SELECT region, rootsum(price) FROM sales GROUP BY region"
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		eng := negEngine(t)

		// Permissive (default): NaN flows through, counted and noted.
		res, err := eng.Query(q, mode)
		if err != nil {
			t.Fatalf("%v permissive: %v", mode, err)
		}
		if res.NumericFaults != 4 {
			t.Errorf("%v: NumericFaults = %d, want 4", mode, res.NumericFaults)
		}
		if len(res.Events) == 0 {
			t.Errorf("%v: permissive faults should be noted in Events", mode)
		}
		if !math.IsNaN(res.Table.Cols[1].F[0]) {
			t.Errorf("%v: want NaN output", mode)
		}

		// Strict: the query fails, naming the aggregate.
		eng.SetNumericPolicy(sudaf.NumericStrict)
		_, err = eng.Query(q, mode)
		if err == nil {
			t.Fatalf("%v strict: want error", mode)
		}
		if !strings.Contains(err.Error(), "numeric domain fault") {
			t.Errorf("%v strict: %v", mode, err)
		}
	}
}

func TestQueryContextCancellation(t *testing.T) {
	eng := demoEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := eng.QueryContext(ctx, "SELECT region, sum(price) FROM sales GROUP BY region", sudaf.Share)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The engine is fine afterwards.
	if _, err := eng.Query("SELECT region, sum(price) FROM sales GROUP BY region", sudaf.Share); err != nil {
		t.Fatalf("engine broken after cancellation: %v", err)
	}
}

func TestQueryTimeout(t *testing.T) {
	defer faultinject.Reset()
	eng := demoEngine(t)
	eng.SetQueryTimeout(10 * time.Millisecond)
	faultinject.Arm(faultinject.PointExecWorker, faultinject.Spec{
		Kind: faultinject.KindDelay, Delay: 80 * time.Millisecond,
	})
	_, err := eng.Query("SELECT region, sum(price) FROM sales GROUP BY region", sudaf.Rewrite)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	faultinject.Reset()
	eng.SetQueryTimeout(0)
	if _, err := eng.Query("SELECT region, sum(price) FROM sales GROUP BY region", sudaf.Rewrite); err != nil {
		t.Fatalf("engine broken after timeout: %v", err)
	}
}

func TestCacheCorruptionFallsBackToRecompute(t *testing.T) {
	eng := demoEngine(t)
	const q = "SELECT region, variance(price) FROM sales GROUP BY region ORDER BY region"

	want, err := eng.Query(q, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: a repeat is a full cache hit.
	rep, err := eng.Query(q, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullCacheHit {
		t.Fatal("repeat query should be a full cache hit")
	}

	if n := eng.Session().Cache().CorruptEntryForTest(""); n == 0 {
		t.Fatal("nothing to corrupt — cache empty?")
	}
	got, err := eng.Query(q, sudaf.Share)
	if err != nil {
		t.Fatalf("corruption must degrade, not fail: %v", err)
	}
	if got.RowsScanned == 0 {
		t.Error("corrupt states should force recomputation from base data")
	}
	if len(got.Events) == 0 {
		t.Error("degradation should be recorded in Events")
	}
	for i := range want.Table.Cols[1].F {
		if math.Abs(got.Table.Cols[1].F[i]-want.Table.Cols[1].F[i]) > 1e-9 {
			t.Fatalf("group %d: recomputed %v != original %v", i,
				got.Table.Cols[1].F[i], want.Table.Cols[1].F[i])
		}
	}
	if eng.CacheStats().Corruptions == 0 {
		t.Error("Corruptions stat should count the dropped states")
	}
}

func TestLoadCSVWithSkip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	data := "a:int,b:float\n1,1.5\nbad-row\n2,2.5\n3,oops\n"
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}

	// Strict load fails with a line number.
	if _, err := sudaf.LoadCSV("t", path); err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("strict load: %v", err)
	}

	tbl, skipped, err := sudaf.LoadCSVWith("t", path, sudaf.CSVOptions{SkipBadRows: true})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 || tbl.NumRows() != 2 {
		t.Fatalf("skipped=%d rows=%d, want 2/2", skipped, tbl.NumRows())
	}
}
