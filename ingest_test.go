package sudaf_test

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"sudaf"
)

// ---- data model for the ingestion tests ----
//
// tr(g int, tag string, v float, one float): v is integer-valued except
// for injected NaN/±Inf rows, so sums and sums-of-squares are exact in
// float64 and incremental maintenance must be *bit*-identical to a cold
// recompute; `one` is the constant 1 (snapshot-tear detector).

func trSchema() *sudaf.Table {
	return sudaf.NewTable("tr",
		sudaf.NewColumn("g", sudaf.Int),
		sudaf.NewColumn("tag", sudaf.String),
		sudaf.NewColumn("v", sudaf.Float),
		sudaf.NewColumn("one", sudaf.Float))
}

func addRow(t *sudaf.Table, g int64, tag string, v float64) {
	t.Col("g").AppendInt(g)
	t.Col("tag").AppendString(tag)
	t.Col("v").AppendFloat(v)
	t.Col("one").AppendFloat(1)
}

// ingestBatches builds the base table plus adversarial delta batches:
// NaN mixed into an existing group, an empty batch, brand-new groups and
// a brand-new dictionary string, +Inf, and a later -Inf landing in the
// same group as the earlier +Inf (so only the merged total goes NaN).
func ingestBatches() []*sudaf.Table {
	var tags = []string{"a", "b", "c"}
	base := trSchema()
	for i := 0; i < 1000; i++ {
		addRow(base, int64(i%5), tags[i%3], float64(i%7))
	}
	b1 := trSchema()
	for i := 0; i < 200; i++ {
		v := float64(i%9 + 1)
		if i%50 == 0 {
			v = math.NaN()
		}
		addRow(b1, int64(i%5), tags[i%2], v)
	}
	b2 := trSchema() // empty batch: must be a version-preserving no-op
	b3 := trSchema()
	for i := 0; i < 150; i++ {
		addRow(b3, int64(7+i%2), "zebra", float64(i%4)) // new groups, new string
	}
	addRow(b3, 2, "a", math.Inf(1))
	b4 := trSchema()
	for i := 0; i < 300; i++ {
		addRow(b4, int64(i%9), tags[i%3], float64(i%11))
	}
	addRow(b4, 2, "b", math.Inf(-1)) // meets b3's +Inf in group g=2
	return []*sudaf.Table{base, b1, b2, b3, b4}
}

// concatBatches materializes batches[0..k] as one cold table.
func concatBatches(batches []*sudaf.Table, k int) *sudaf.Table {
	out := trSchema()
	for _, b := range batches[:k+1] {
		for i := 0; i < b.NumRows(); i++ {
			addRow(out, b.Col("g").I[i], b.Col("tag").StringAt(i), b.Col("v").F[i])
		}
	}
	return out
}

func openTR(t *testing.T, tbl *sudaf.Table) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 2})
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return eng
}

// ingestQueries pairs each differential query with its group-by arity.
var ingestQueries = []struct {
	sql  string
	keys int
}{
	{"SELECT g, count(*), min(v), max(v) FROM tr GROUP BY g", 1},
	{"SELECT tag, sum(v), qm(v) FROM tr GROUP BY tag", 1},
	{"SELECT sum(v), count(*) FROM tr", 0},
	{"SELECT g, sum(v) FROM tr WHERE v > 0 GROUP BY g", 1},
}

// resultMap canonicalizes a result for order-independent bit comparison:
// group key strings → aggregate value bit patterns (NaNs normalized).
func resultMap(res *sudaf.Result, keyCols int) map[string][]uint64 {
	out := map[string][]uint64{}
	for r := 0; r < res.Table.NumRows(); r++ {
		var key []string
		for c := 0; c < keyCols; c++ {
			key = append(key, res.Table.Cols[c].ValueString(r))
		}
		var vals []uint64
		for c := keyCols; c < len(res.Table.Cols); c++ {
			v := res.Table.Cols[c].AsFloat(r)
			if math.IsNaN(v) {
				v = math.NaN()
			}
			vals = append(vals, math.Float64bits(v))
		}
		out[strings.Join(key, "|")] = vals
	}
	return out
}

func sameResultMaps(a, b map[string][]uint64) string {
	if len(a) != len(b) {
		return fmt.Sprintf("group counts differ: %d vs %d", len(a), len(b))
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok {
			return fmt.Sprintf("group %q missing", k)
		}
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Sprintf("group %q col %d: %v vs %v",
					k, i, math.Float64frombits(av[i]), math.Float64frombits(bv[i]))
			}
		}
	}
	return ""
}

var allModes = []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share}

// TestAppendDifferential is the tentpole acceptance test: after every
// append batch, every query in every mode on the incrementally grown
// engine must be bit-identical to a cold engine over the concatenated
// data — including NaN/±Inf deltas, an empty batch and brand-new groups.
// Share mode exercises delta-maintained cache entries specifically: from
// the second round on it must answer fully from the migrated cache.
func TestAppendDifferential(t *testing.T) {
	batches := ingestBatches()
	eng := openTR(t, batches[0])
	ctx := context.Background()

	for k := 0; k < len(batches); k++ {
		if k > 0 {
			res, err := eng.Append(ctx, "tr", batches[k])
			if err != nil {
				t.Fatalf("append batch %d: %v", k, err)
			}
			if batches[k].NumRows() == 0 {
				if res.NewEpoch != res.OldEpoch || res.RowsAppended != 0 {
					t.Fatalf("empty batch changed version: %+v", res)
				}
			} else {
				if res.NewEpoch == res.OldEpoch {
					t.Fatalf("batch %d: version did not advance", k)
				}
				if res.EntriesMigrated == 0 {
					t.Fatalf("batch %d: no cache entries migrated (invalidated=%d, events=%v)",
						k, res.EntriesInvalidated, res.Events)
				}
				if res.EntriesInvalidated != 0 {
					t.Fatalf("batch %d: unexpected invalidations: %v", k, res.Events)
				}
			}
		}
		cold := openTR(t, concatBatches(batches, k))
		for _, q := range ingestQueries {
			for _, mode := range allModes {
				got, err := eng.Query(q.sql, mode)
				if err != nil {
					t.Fatalf("batch %d %v %q: %v", k, mode, q.sql, err)
				}
				want, err := cold.Query(q.sql, mode)
				if err != nil {
					t.Fatalf("batch %d cold %v %q: %v", k, mode, q.sql, err)
				}
				if diff := sameResultMaps(resultMap(want, q.keys), resultMap(got, q.keys)); diff != "" {
					t.Fatalf("batch %d %v %q: incremental ≠ cold: %s", k, mode, q.sql, diff)
				}
				if mode == sudaf.Share && k > 0 {
					if !got.FullCacheHit || got.RowsScanned != 0 {
						t.Fatalf("batch %d share %q: expected full hit from migrated states, got hit=%v scanned=%d",
							k, q.sql, got.FullCacheHit, got.RowsScanned)
					}
				}
			}
		}
	}
}

// TestAppendCSV: the CSV ingestion path shares Append's semantics.
func TestAppendCSV(t *testing.T) {
	batches := ingestBatches()
	eng := openTR(t, batches[0])
	path := filepath.Join(t.TempDir(), "delta.csv")
	if err := batches[1].SaveCSVFile(path); err != nil {
		t.Fatal(err)
	}
	res, err := eng.AppendCSV(context.Background(), "tr", path)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAppended != batches[1].NumRows() {
		t.Fatalf("appended %d rows, want %d", res.RowsAppended, batches[1].NumRows())
	}
	cold := openTR(t, concatBatches(batches, 1))
	q := ingestQueries[0]
	got, err := eng.Query(q.sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cold.Query(q.sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sameResultMaps(resultMap(want, q.keys), resultMap(got, q.keys)); diff != "" {
		t.Fatalf("CSV append ≠ cold: %s", diff)
	}
}

// TestViewMaintenanceOnAppend: a materialized state view is delta-folded
// by Append, and post-append roll-ups from it match a cold recompute.
func TestViewMaintenanceOnAppend(t *testing.T) {
	batches := ingestBatches()
	eng := openTR(t, batches[0])
	if err := eng.Materialize("v_g", "SELECT g, sum(v), count(*) FROM tr GROUP BY g"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Append(context.Background(), "tr", batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if res.ViewsMaintained != 1 || res.ViewsInvalidated != 0 {
		t.Fatalf("views maintained=%d invalidated=%d (events %v)",
			res.ViewsMaintained, res.ViewsInvalidated, res.Events)
	}
	eng.ClearCache() // force the roll-up path, not the state cache
	got, err := eng.Query("SELECT sum(v), count(*) FROM tr", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if got.UsedView != "v_g" {
		t.Fatalf("post-append query used view %q, want v_g", got.UsedView)
	}
	if got.RowsScanned >= batches[0].NumRows() {
		t.Fatalf("roll-up scanned %d rows — looks like a base rescan", got.RowsScanned)
	}
	cold := openTR(t, concatBatches(batches, 1))
	want, err := cold.Query("SELECT sum(v), count(*) FROM tr", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sameResultMaps(resultMap(want, 0), resultMap(got, 0)); diff != "" {
		t.Fatalf("maintained view roll-up ≠ cold: %s", diff)
	}
}

// TestAppendErrors: structural misuse is rejected up front.
func TestAppendErrors(t *testing.T) {
	eng := openTR(t, ingestBatches()[0])
	ctx := context.Background()
	if _, err := eng.Append(ctx, "nope", trSchema()); err == nil {
		t.Error("append to unknown table succeeded")
	}
	if _, err := eng.Append(ctx, "tr", nil); err == nil {
		t.Error("nil delta accepted")
	}
	bad := sudaf.NewTable("tr", sudaf.NewColumn("g", sudaf.Int))
	if _, err := eng.Append(ctx, "tr", bad); err == nil {
		t.Error("schema mismatch accepted")
	}
	if err := eng.Materialize("v_e", "SELECT g, sum(v) FROM tr GROUP BY g"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Append(ctx, "v_e", trSchema()); err == nil {
		t.Error("append to a materialized view accepted")
	}
}

// TestAppendRacesQueries drives appends concurrently with queries in all
// modes plus a streaming cursor, under -race in CI. Snapshot isolation
// is asserted structurally: count(*) and sum(one) are scanned from
// different columns, so a query observing an append mid-scan would see
// them disagree; and every observed total must sit exactly on a batch
// boundary of the append schedule.
func TestAppendRacesQueries(t *testing.T) {
	const (
		deltaRows = 200
		deltaN    = 12
	)
	base := trSchema()
	for i := 0; i < 2000; i++ {
		addRow(base, int64(i%6), []string{"a", "b", "c"}[i%3], float64(i%13))
	}
	eng := openTR(t, base)
	ctx := context.Background()

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	stop := make(chan struct{})

	for w := 0; w < 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			mode := allModes[w%len(allModes)]
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query("SELECT count(*), sum(one) FROM tr", mode)
				if err != nil {
					errCh <- err
					return
				}
				cnt := res.Table.Cols[0].AsFloat(0)
				one := res.Table.Cols[1].AsFloat(0)
				if cnt != one {
					errCh <- fmt.Errorf("%v: torn snapshot: count=%v sum(one)=%v", mode, cnt, one)
					return
				}
				if extra := int(cnt) - base.NumRows(); extra < 0 || extra%deltaRows != 0 || extra > deltaN*deltaRows {
					errCh <- fmt.Errorf("%v: total %v is not a batch boundary", mode, cnt)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // streaming cursor reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			cur, err := eng.QueryBatches(ctx, "SELECT g, count(*), sum(one) FROM tr GROUP BY g", sudaf.Share)
			if err != nil {
				errCh <- err
				return
			}
			var cnt, one float64
			for cur.Next() {
				b := cur.Batch()
				for r := 0; r < b.NumRows(); r++ {
					cnt += b.Cols[1].AsFloat(r)
					one += b.Cols[2].AsFloat(r)
				}
			}
			if err := cur.Err(); err != nil {
				errCh <- err
				return
			}
			if cnt != one {
				errCh <- fmt.Errorf("cursor: torn snapshot: count=%v sum(one)=%v", cnt, one)
				return
			}
		}
	}()

	var appended []*sudaf.Table
	for k := 0; k < deltaN; k++ {
		d := trSchema()
		for i := 0; i < deltaRows; i++ {
			addRow(d, int64((i+k)%8), []string{"a", "b", "c", "zebra"}[(i+k)%4], float64(i%10))
		}
		if _, err := eng.Append(ctx, "tr", d); err != nil {
			t.Fatalf("append %d: %v", k, err)
		}
		appended = append(appended, d)
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Quiescent differential: the grown engine equals a cold engine.
	cold := trSchema()
	for _, src := range append([]*sudaf.Table{base}, appended...) {
		for i := 0; i < src.NumRows(); i++ {
			addRow(cold, src.Col("g").I[i], src.Col("tag").StringAt(i), src.Col("v").F[i])
		}
	}
	coldEng := openTR(t, cold)
	for _, q := range ingestQueries {
		for _, mode := range allModes {
			got, err := eng.Query(q.sql, mode)
			if err != nil {
				t.Fatal(err)
			}
			want, err := coldEng.Query(q.sql, mode)
			if err != nil {
				t.Fatal(err)
			}
			if diff := sameResultMaps(resultMap(want, q.keys), resultMap(got, q.keys)); diff != "" {
				t.Fatalf("%v %q after racing appends: %s", mode, q.sql, diff)
			}
		}
	}
}
