package sudaf_test

import (
	"context"
	"fmt"
	"log"
	"strings"

	"sudaf"
)

// salesEngine builds a single-threaded engine over a small deterministic
// sales table, shared by the examples below.
func salesEngine() *sudaf.Engine {
	eng := sudaf.Open(sudaf.Options{Workers: 1})
	t := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	for _, r := range []struct {
		region int64
		price  float64
	}{{0, 2}, {0, 8}, {1, 3}, {1, 27}} {
		t.Col("region").AppendInt(r.region)
		t.Col("price").AppendFloat(r.price)
	}
	if err := eng.Register(t); err != nil {
		log.Fatal(err)
	}
	return eng
}

func printResult(res *sudaf.Result) {
	fmt.Println(strings.Join(res.Table.ColumnNames(), "\t"))
	for i := 0; i < res.Table.NumRows(); i++ {
		row := make([]string, len(res.Table.Cols))
		for j, c := range res.Table.Cols {
			row[j] = c.ValueString(i)
		}
		fmt.Println(strings.Join(row, "\t"))
	}
}

func ExampleEngine_QueryContext() {
	eng := salesEngine()
	res, err := eng.QueryContext(context.Background(),
		"SELECT region, gm(price) AS geo_mean FROM sales GROUP BY region", sudaf.Share)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	// Output:
	// region	geo_mean
	// 0	4
	// 1	9
}

func ExampleEngine_QueryBatches() {
	eng := salesEngine()
	cur, err := eng.QueryBatches(context.Background(),
		"SELECT region, avg(price) FROM sales GROUP BY region", sudaf.Share)
	if err != nil {
		log.Fatal(err)
	}
	defer cur.Close()
	for cur.Next() {
		b := cur.Batch()
		fmt.Printf("batch of %d group row(s)\n", b.NumRows())
	}
	if err := cur.Err(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// batch of 2 group row(s)
}

func ExampleEngine_Append() {
	eng := salesEngine()
	// Warm the cache, then append: cached states are delta-maintained,
	// not recomputed, and the next query answers from the merged states.
	if _, err := eng.Query("SELECT region, gm(price) AS geo_mean FROM sales GROUP BY region", sudaf.Share); err != nil {
		log.Fatal(err)
	}
	delta := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	delta.Col("region").AppendInt(0)
	delta.Col("price").AppendFloat(4)
	ar, err := eng.Append(context.Background(), "sales", delta)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("appended %d row(s), migrated %d cache entr(ies), maintained %d state(s)\n",
		ar.RowsAppended, ar.EntriesMigrated, ar.StatesMaintained)
	res, err := eng.Query("SELECT region, gm(price) AS geo_mean FROM sales GROUP BY region", sudaf.Share)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	// Output:
	// appended 1 row(s), migrated 1 cache entr(ies), maintained 2 state(s)
	// region	geo_mean
	// 0	4
	// 1	9
}

func ExampleEngine_Query_windowed() {
	eng := salesEngine()
	// OVER attaches to one aggregate call and its frame governs the whole
	// statement: one output row per frame, partial frames at the start.
	res, err := eng.Query("SELECT sum(price) OVER (ROWS 1 PRECEDING) AS s FROM sales", sudaf.Share)
	if err != nil {
		log.Fatal(err)
	}
	printResult(res)
	// Output:
	// s
	// 2
	// 10
	// 11
	// 30
}

func ExampleEngine_Subscribe() {
	eng := salesEngine()
	// A tumbling subscription first emits the complete buckets already in
	// the table, then one emission per completed bucket as appends land.
	sub, err := eng.Subscribe(context.Background(),
		"SELECT sum(price) OVER (ROWS 2 TUMBLING) AS s FROM sales", sudaf.Share)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	emit := func() {
		wr := <-sub.Results()
		fmt.Printf("seq %d rows [%d,%d]: %s\n",
			wr.Seq, wr.FirstRow, wr.LastRow, wr.Table.Cols[0].ValueString(0))
	}
	emit() // snapshot bucket {2, 8}
	emit() // snapshot bucket {3, 27}
	delta := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	for _, p := range []float64{5, 15} {
		delta.Col("region").AppendInt(2)
		delta.Col("price").AppendFloat(p)
	}
	if _, err := eng.Append(context.Background(), "sales", delta); err != nil {
		log.Fatal(err)
	}
	emit() // appended bucket {5, 15}
	// Output:
	// seq 1 rows [0,1]: 10
	// seq 2 rows [2,3]: 30
	// seq 3 rows [4,5]: 20
}

func ExampleEngine_Explain() {
	eng := salesEngine()
	// Run once in share mode so the cache holds gm's states, then explain
	// how a UDAF over ln(price) would execute: its single state is served
	// from the cached product state via the scalar rewriting r(s) = ln(s).
	if _, err := eng.Query("SELECT region, gm(price) FROM sales GROUP BY region", sudaf.Share); err != nil {
		log.Fatal(err)
	}
	if err := eng.DefineUDAF("lnprod", []string{"x"}, "sum(ln(x))"); err != nil {
		log.Fatal(err)
	}
	ex, err := eng.Explain("SELECT region, lnprod(price) FROM sales GROUP BY region", sudaf.Share)
	if err != nil {
		log.Fatal(err)
	}
	// ex.String() renders the full report; the structured fields carry
	// the provenance. (The table epoch in ex.Fingerprint is run-dependent,
	// so this example prints the stable parts.)
	st := ex.States[0]
	fmt.Printf("state %s: %s hit\n", st.Key, st.Hit)
	fmt.Printf("from %s via r(s) = %s\n", st.Matched, st.Rewrite)
	fmt.Printf("positive-only: %v, conditions: %d\n", st.PositiveOnly, len(st.Conditions))
	// Output:
	// state sum[ln(x)](price): shared hit
	// from prod[x](price) via r(s) = ln(s)
	// positive-only: true, conditions: 0
}
