// Command sudaf is an interactive shell for the SUDAF engine: load CSV
// tables, define UDAFs declaratively, and run SQL in any execution mode.
//
// Usage:
//
//	sudaf -load sales=sales.csv -load stores=stores.csv
//
// Commands inside the shell:
//
//	\udaf <name> <params> <expression>   define a UDAF, e.g.
//	                                     \udaf qm x sqrt(sum(x^2)/count())
//	\udafs                               list defined UDAFs
//	\mode baseline|rewrite|share         switch execution mode
//	\explain <name>                      show a UDAF's canonical form
//	\rewrite <sql>                       print the RQ-rewritten SQL
//	\views                               list materialized views
//	\materialize <name> <sql>            create a state view
//	\cache                               show cache statistics
//	\shards                              show scatter-gather shard statistics
//	\save                                persist tables + state cache to -data-dir
//	\space                               dump the symbolic sharing space
//	\tables                              list tables
//	\demo                                load a small demo dataset
//	\quit
//
// Anything else is executed as SQL. A statement of the form
// `EXPLAIN <query>` is not executed: it prints the canonical
// decomposition, the RQ rewriting, and (in share mode) the sharing
// provenance of every aggregation state against the live cache.
// Windowed statements attach OVER to one aggregate call; its frame
// governs the whole statement (docs/WINDOWS.md):
//
//	SELECT sum(price) OVER (ROWS 9 PRECEDING), avg(price) FROM sales
//	SELECT qm(price) OVER (ROWS 1000 TUMBLING) FROM sales
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"sudaf"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	workers := flag.Int("workers", 0, "engine parallelism (0 = NumCPU)")
	shards := flag.Int("shards", 0, "scatter-gather shard count (0/1 = unsharded)")
	timeout := flag.Duration("timeout", 0, "per-query timeout (0 = none), e.g. 30s")
	numeric := flag.String("numeric", "permissive", "numeric fault policy: strict|permissive")
	skipBad := flag.Bool("skip-bad-rows", false, "skip and count malformed CSV rows instead of failing the load")
	dataDir := flag.String("data-dir", "", "persistence directory: restore tables + state cache at start, \\save writes them back")
	flag.Var(&loads, "load", "name=path.csv (repeatable)")
	flag.Parse()

	var pol sudaf.NumericPolicy
	switch *numeric {
	case "permissive":
		pol = sudaf.NumericPermissive
	case "strict":
		pol = sudaf.NumericStrict
	default:
		fatal("bad -numeric %q, want strict or permissive", *numeric)
	}

	eng := sudaf.Open(sudaf.Options{Workers: *workers, Shards: *shards,
		QueryTimeout: *timeout, Numeric: pol, DataDir: *dataDir})
	if *dataDir != "" {
		if err := eng.LoadError(); err != nil {
			fmt.Printf("note: partial restore from %s: %v\n", *dataDir, err)
		}
		if names := eng.TableNames(); len(names) > 0 {
			fmt.Printf("restored %d table(s) from %s: %s\n",
				len(names), *dataDir, strings.Join(names, ", "))
		}
	}
	for _, spec := range loads {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal("bad -load %q, want name=path.csv", spec)
		}
		t, skipped, err := sudaf.LoadCSVWith(parts[0], parts[1], sudaf.CSVOptions{SkipBadRows: *skipBad})
		if err != nil {
			fatal("load %s: %v", spec, err)
		}
		if err := eng.Register(t); err != nil {
			fatal("register %s: %v", parts[0], err)
		}
		fmt.Printf("loaded %s: %d rows", parts[0], t.NumRows())
		if skipped > 0 {
			fmt.Printf(" (%d malformed rows skipped)", skipped)
		}
		fmt.Println()
	}

	mode := sudaf.Share
	fmt.Println("SUDAF shell — \\demo loads sample data, \\quit exits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Printf("sudaf[%v]> ", mode)
		if !sc.Scan() {
			break
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "\\") {
			if runCommand(eng, line, &mode) {
				return
			}
			continue
		}
		if rest, ok := stripExplain(line); ok {
			ex, err := eng.Explain(rest, mode)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Print(ex)
			continue
		}
		start := time.Now()
		res, err := runQuery(eng, line, mode)
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		for _, ev := range res.Events {
			fmt.Println("note:", ev)
		}
		printTable(res)
		fmt.Printf("(%d rows, %d base rows scanned, %v", res.Table.NumRows(),
			res.RowsScanned, time.Since(start).Round(time.Microsecond))
		if res.FullCacheHit {
			fmt.Printf(", full cache hit")
		}
		if res.UsedView != "" {
			fmt.Printf(", via view %s", res.UsedView)
		}
		fmt.Println(")")
	}
}

// stripExplain detects an `EXPLAIN <query>` statement (case-insensitive)
// and returns the inner query.
func stripExplain(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 || !strings.EqualFold(fields[0], "explain") {
		return "", false
	}
	return strings.TrimSpace(line[len(fields[0]):]), true
}

// runQuery executes one statement under a context canceled by Ctrl-C, so
// an interrupt aborts the running query (scan/join/aggregate loops poll
// cooperatively) and drops back to the prompt instead of killing the
// shell. Signal delivery is restored before returning, so a Ctrl-C at the
// prompt still terminates the process normally.
func runQuery(eng *sudaf.Engine, sql string, mode sudaf.Mode) (*sudaf.Result, error) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	return eng.QueryContext(ctx, sql, mode)
}

func runCommand(eng *sudaf.Engine, line string, mode *sudaf.Mode) (quit bool) {
	fields := strings.Fields(line)
	switch fields[0] {
	case "\\quit", "\\q":
		return true
	case "\\mode":
		if len(fields) != 2 {
			fmt.Println("usage: \\mode baseline|rewrite|share")
			return
		}
		switch fields[1] {
		case "baseline":
			*mode = sudaf.Baseline
		case "rewrite":
			*mode = sudaf.Rewrite
		case "share":
			*mode = sudaf.Share
		default:
			fmt.Println("unknown mode", fields[1])
		}
	case "\\udaf":
		if len(fields) < 4 {
			fmt.Println("usage: \\udaf <name> <params,comma-separated> <expression>")
			return
		}
		name := fields[1]
		params := strings.Split(fields[2], ",")
		body := strings.Join(fields[3:], " ")
		if err := eng.DefineUDAF(name, params, body); err != nil {
			fmt.Println("error:", err)
			return
		}
		if form, ok := eng.ExplainUDAF(name); ok {
			fmt.Println(form)
		}
	case "\\explain":
		if len(fields) != 2 {
			fmt.Println("usage: \\explain <name>")
			return
		}
		if form, ok := eng.ExplainUDAF(fields[1]); ok {
			fmt.Println(form)
		} else {
			fmt.Println("unknown UDAF", fields[1])
		}
	case "\\materialize":
		if len(fields) < 3 {
			fmt.Println("usage: \\materialize <name> <sql>")
			return
		}
		if err := eng.Materialize(fields[1], strings.Join(fields[2:], " ")); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("materialized", fields[1])
		}
	case "\\cache":
		st := eng.CacheStats()
		fmt.Printf("lookups=%d exact=%d shared=%d sign=%d misses=%d evictions=%d\n",
			st.Lookups, st.ExactHits, st.SharedHits, st.SignHits, st.Misses, st.Evictions)
	case "\\shards":
		st := eng.ShardStats()
		if st.Shards == 0 {
			fmt.Println("sharding off (run with -shards N)")
			return
		}
		fmt.Printf("shards=%d tables=%d queries=%d fallbacks=%d scans=%d full_hits=%d state_hits=%d rows_scanned=%d appends_routed=%d entries_maintained=%d\n",
			st.Shards, st.Tables, st.Queries, st.Fallbacks, st.Scans, st.FullHits,
			st.StateHits, st.RowsScanned, st.AppendsRouted, st.EntriesMaintained)
	case "\\rewrite":
		if len(fields) < 2 {
			fmt.Println("usage: \\rewrite <sql>")
			return
		}
		out, err := eng.RewriteSQL(strings.Join(fields[1:], " "))
		if err != nil {
			fmt.Println("error:", err)
			return
		}
		fmt.Println(out)
	case "\\save":
		if err := eng.Save(); err != nil {
			fmt.Println("error:", err)
		} else {
			fmt.Println("saved tables + state cache (run with -data-dir to pick the directory)")
		}
	case "\\tables":
		fmt.Println(strings.Join(eng.TableNames(), ", "))
	case "\\views":
		fmt.Println(strings.Join(eng.ViewNames(), ", "))
	case "\\space":
		fmt.Print(eng.SymbolicSpaceDump())
	case "\\udafs":
		fmt.Println(strings.Join(eng.UDAFNames(), ", "))
	case "\\demo":
		loadDemo(eng)
		fmt.Println("demo table 'sales' loaded (region, price, qty; 100k rows)")
	default:
		fmt.Println("unknown command", fields[0])
	}
	return false
}

func loadDemo(eng *sudaf.Engine) {
	rng := rand.New(rand.NewSource(1))
	t := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float),
		sudaf.NewColumn("qty", sudaf.Float))
	for i := 0; i < 100_000; i++ {
		t.Col("region").AppendInt(int64(rng.Intn(10)))
		t.Col("price").AppendFloat(1 + rng.Float64()*99)
		t.Col("qty").AppendFloat(float64(1 + rng.Intn(20)))
	}
	if err := eng.Register(t); err != nil {
		fmt.Println("error:", err)
	}
}

func printTable(res *sudaf.Result) {
	t := res.Table
	limit := t.NumRows()
	if limit > 25 {
		limit = 25
	}
	names := t.ColumnNames()
	fmt.Println(strings.Join(names, "\t"))
	for i := 0; i < limit; i++ {
		row := make([]string, len(t.Cols))
		for j, c := range t.Cols {
			row[j] = c.ValueString(i)
		}
		fmt.Println(strings.Join(row, "\t"))
	}
	if limit < t.NumRows() {
		fmt.Printf("... (%d more rows)\n", t.NumRows()-limit)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
