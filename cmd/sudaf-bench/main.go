// Command sudaf-bench regenerates the SUDAF paper's evaluation: every
// figure's workload over synthetic TPC-DS-like and Milan-like data, with
// the three systems (baseline with hardcoded UDAFs, SUDAF without
// sharing, SUDAF with sharing). See EXPERIMENTS.md for recorded runs.
//
// Usage:
//
//	sudaf-bench -exp all
//	sudaf-bench -exp fig1,fig6 -pg-scale 2 -milan-pg 4000000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sudaf/internal/bench"
	"sudaf/internal/obs"
)

func main() {
	var (
		exps       = flag.String("exp", "all", "comma-separated experiments: table1,space,fig1,fig2,fig6,fig7,fig8,fig9,fig10,batch,kernel,concurrent,ingest,shard,encode,window,all")
		pgScale    = flag.Int("pg-scale", 2, "TPC-DS scale for serial (PostgreSQL-mode) runs")
		sparkScale = flag.Int("spark-scale", 4, "TPC-DS scale for parallel (Spark-mode) runs")
		milanPG    = flag.Int("milan-pg", 4_000_000, "Milan rows for serial runs")
		milanSpark = flag.Int("milan-spark", 8_000_000, "Milan rows for parallel runs")
		squares    = flag.Int("squares", 10_000, "Milan group cardinality")
		workers    = flag.Int("workers", 0, "Spark-mode parallelism (0 = NumCPU)")
		n10        = flag.Int("fig10-queries", 200, "random sequence length")
		concRows   = flag.Int("conc-rows", 1_500_000, "Milan rows for the concurrent throughput experiment")
		concSec    = flag.Float64("conc-seconds", 3, "time budget per (system, clients) cell of the concurrent experiment")
		seed       = flag.Int64("seed", 0, "dataset seed (0 = default)")
		metricsAt  = flag.String("metrics-addr", "", "serve Prometheus metrics, expvar and pprof on this address while the harness runs, e.g. :9090")
	)
	flag.Parse()

	var reg *obs.Registry
	if *metricsAt != "" {
		reg = obs.NewRegistry()
		srv, err := obs.ServeMetrics(*metricsAt, reg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics server: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics  (expvar at /debug/vars, pprof at /debug/pprof)\n", srv.Addr)
	}

	r := bench.NewRunner(bench.Config{
		PGScale:        *pgScale,
		SparkScale:     *sparkScale,
		MilanRowsPG:    *milanPG,
		MilanRowsSpark: *milanSpark,
		MilanSquares:   *squares,
		Workers:        *workers,
		Seed:           *seed,
		Fig10Queries:   *n10,
		ConcRows:       *concRows,
		ConcSeconds:    *concSec,
		Out:            os.Stdout,
		Metrics:        reg,
	})

	start := time.Now()
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	if all || want["table1"] {
		r.Table1()
	}
	if all || want["space"] {
		r.Space()
	}
	if all || want["fig1"] {
		r.Fig1(false)
	}
	if all || want["fig2"] {
		r.Fig1(true)
	}
	if all || want["fig6"] || want["fig8"] {
		r.Fig6and8(false)
	}
	if all || want["fig7"] || want["fig9"] {
		r.Fig6and8(true)
	}
	if all || want["fig10"] {
		r.Fig10()
	}
	if all || want["batch"] {
		r.Batch()
	}
	if all || want["kernel"] {
		r.Kernel()
	}
	if all || want["concurrent"] {
		r.Concurrent()
	}
	if all || want["ingest"] {
		r.Ingest()
	}
	if all || want["shard"] {
		r.Shard()
	}
	if all || want["encode"] {
		r.Encode()
	}
	if all || want["window"] {
		r.Window()
	}
	fmt.Printf("\ntotal harness time: %v\n", time.Since(start).Round(time.Millisecond))
}
