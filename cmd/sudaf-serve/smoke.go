package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"time"

	"sudaf"
	"sudaf/internal/errs"
	"sudaf/internal/server"
	"sudaf/internal/server/client"
)

// smokeQuery exercises a UDAF (qm) plus a builtin through a join, so
// share-mode runs populate and reuse the state cache.
const smokeQuery = `SELECT s_state, qm(ss_list_price), avg(ss_sales_price)
	FROM store_sales, store WHERE ss_store_sk = s_store_sk
	GROUP BY s_state ORDER BY s_state`

// runSmoke is the -smoke entry point: a self-contained integration
// suite for the serving layer, designed to run under -race in CI.
// Returns the process exit code.
func runSmoke() int {
	failures := 0
	fail := func(format string, args ...any) {
		failures++
		fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
	}
	step := func(format string, args ...any) {
		fmt.Printf("smoke: "+format+"\n", args...)
	}

	// In-memory fixture: 6 stores, 20k sales rows, fixed seed.
	eng := sudaf.Open(sudaf.Options{Workers: 4, MaxConcurrentQueries: 4})
	rng := rand.New(rand.NewSource(7))
	store := sudaf.NewTable("store",
		sudaf.NewColumn("s_store_sk", sudaf.Int),
		sudaf.NewColumn("s_state", sudaf.String))
	states := []string{"TN", "CA", "TN", "NY", "TN", "WA"}
	for i, st := range states {
		store.Col("s_store_sk").AppendInt(int64(i))
		store.Col("s_state").AppendString(st)
	}
	sales := sudaf.NewTable("store_sales",
		sudaf.NewColumn("ss_store_sk", sudaf.Int),
		sudaf.NewColumn("ss_list_price", sudaf.Float),
		sudaf.NewColumn("ss_sales_price", sudaf.Float))
	for i := 0; i < 20000; i++ {
		sales.Col("ss_store_sk").AppendInt(int64(rng.Intn(len(states))))
		lp := 10 + rng.Float64()*90
		sales.Col("ss_list_price").AppendFloat(lp)
		sales.Col("ss_sales_price").AppendFloat(lp * (0.5 + rng.Float64()*0.5))
	}
	for _, t := range []*sudaf.Table{store, sales} {
		if err := eng.Register(t); err != nil {
			fail("register: %v", err)
			return 1
		}
	}
	baseline := runtime.NumGoroutine()

	srv, err := server.New(server.Config{
		Session: eng.Session(), MaxInflight: 4, QueueDepth: 8, MetricsLabel: "smoke-a"})
	if err != nil {
		fail("server.New: %v", err)
		return 1
	}
	if err := srv.Start("127.0.0.1:0"); err != nil {
		fail("Start: %v", err)
		return 1
	}
	step("server up at %s", srv.Addr())

	// Correctness over the wire: server result == direct engine result.
	direct, err := eng.Query(smokeQuery, sudaf.Share)
	if err != nil {
		fail("direct query: %v", err)
		return 1
	}
	c := client.New(srv.Addr(), client.Options{})
	res, err := c.Query(context.Background(), smokeQuery, "share")
	if err != nil {
		fail("wire query: %v", err)
		return 1
	}
	for i := 0; i < direct.Table.NumRows(); i++ {
		for col := 1; col < 3; col++ {
			got, want := res.Float(i, col), direct.Table.Cols[col].AsFloat(i)
			if math.Abs(got-want) > 1e-9*math.Abs(want) {
				fail("wire row %d col %d = %v, want %v", i, col, got, want)
			}
		}
	}
	step("wire result matches engine (%d groups)", res.End.Groups)

	// Concurrent burst — queries and appends — with a forced drain in
	// the middle. Every caller must land on a typed outcome and no
	// accepted work may be lost.
	const queryCallers, appendCallers = 16, 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	counts := map[string]int{}
	record := func(kind string) {
		mu.Lock()
		counts[kind]++
		mu.Unlock()
	}
	classify := func(err error) string {
		switch {
		case err == nil:
			return "ok"
		case errors.Is(err, errs.ErrOverloaded):
			return "shed"
		case errors.Is(err, errs.ErrEngineClosed):
			return "closed"
		case errors.Is(err, errs.ErrCanceled):
			return "canceled"
		case errors.Is(err, client.ErrAmbiguous):
			return "ambiguous"
		case client.IsTransport(err):
			// Dialed after the listener closed — never reached execution.
			return "refused"
		}
		return "UNTYPED:" + err.Error()
	}
	burstBase := eng.Session().Stats().QueriesStarted
	for i := 0; i < queryCallers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := client.New(srv.Addr(), client.Options{Retries: -1})
			mode := "share"
			if i%3 == 0 {
				mode = "rewrite"
			}
			_, err := cc.Query(context.Background(), smokeQuery, mode)
			record("query:" + classify(err))
		}(i)
	}
	for i := 0; i < appendCallers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cc := client.New(srv.Addr(), client.Options{Retries: -1})
			_, err := cc.Append(context.Background(), "store_sales", []server.ColumnData{
				{Name: "ss_store_sk", Kind: "int", Ints: []int64{int64(i % 6)}},
				{Name: "ss_list_price", Kind: "float", Floats: []float64{42}},
				{Name: "ss_sales_price", Kind: "float", Floats: []float64{21}},
			})
			record("append:" + classify(err))
		}(i)
	}
	// Drain only once the burst is genuinely in flight: wait for the
	// engine to have accepted several burst queries (bounded, in case
	// overload sheds everything first).
	for waited := 0; waited < 100; waited++ {
		if eng.Session().Stats().QueriesStarted >= burstBase+3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	drainStart := time.Now()
	if err := srv.Shutdown(drainCtx); err != nil {
		fail("mid-burst Shutdown: %v", err)
	}
	wg.Wait()
	step("forced drain in %s; outcomes: %v",
		time.Since(drainStart).Round(time.Millisecond), counts)
	total := 0
	for kind, n := range counts {
		total += n
		if len(kind) > 7 && (kind[:7] == "query:U" || kind[:8] == "append:U") {
			fail("untyped outcomes: %s x%d", kind, n)
		}
	}
	if total != queryCallers+appendCallers {
		fail("outcomes %d != callers %d", total, queryCallers+appendCallers)
	}
	// Zero lost accepted work: engine lifetime counters balance.
	st := eng.Session().Stats()
	if st.QueriesStarted != st.QueriesCompleted+st.QueriesFailed {
		fail("engine stats unbalanced: started=%d completed=%d failed=%d",
			st.QueriesStarted, st.QueriesCompleted, st.QueriesFailed)
	}
	if eng.Closed() {
		fail("server Shutdown closed the engine")
	}

	// No leaked goroutines: settle back to the pre-server baseline.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		fail("goroutine leak: %d after drain, baseline %d", n, baseline)
	} else {
		step("goroutines settled: %d (baseline %d)", n, baseline)
	}

	// Warm restart: a second front-end over the same engine serves the
	// repeated share query as a full cache hit.
	srv2, err := server.New(server.Config{Session: eng.Session(), MetricsLabel: "smoke-b"})
	if err != nil {
		fail("second server.New: %v", err)
		return failures
	}
	if err := srv2.Start("127.0.0.1:0"); err != nil {
		fail("second Start: %v", err)
		return failures
	}
	c2 := client.New(srv2.Addr(), client.Options{})
	res2, err := c2.Query(context.Background(), smokeQuery, "share")
	if err != nil {
		fail("query after front-end restart: %v", err)
	} else if !res2.End.FullCacheHit && res2.End.Stats.CacheExactHits == 0 &&
		res2.End.Stats.CacheSharedHits == 0 {
		// Appends racing the drain may have invalidated or migrated
		// cache entries; warm means *some* reuse, cold means none.
		fail("restarted front-end shows no cache reuse: %+v", res2.End.Stats)
	} else {
		step("second front-end warm (fullHit=%v exact=%d shared=%d)",
			res2.End.FullCacheHit, res2.End.Stats.CacheExactHits, res2.End.Stats.CacheSharedHits)
	}
	if err := srv2.Shutdown(drainCtx); err != nil {
		fail("second Shutdown: %v", err)
	}

	// Engine drain: idempotent, typed rejections afterwards.
	if err := eng.Close(drainCtx); err != nil {
		fail("engine Close: %v", err)
	}
	if err := eng.Close(drainCtx); err != nil {
		fail("second engine Close: %v", err)
	}
	if _, err := eng.Query(smokeQuery, sudaf.Share); !errors.Is(err, sudaf.ErrEngineClosed) {
		fail("post-close query: got %v, want ErrEngineClosed", err)
	}

	if failures > 0 {
		fmt.Fprintf(os.Stderr, "smoke: %d failure(s)\n", failures)
		return 1
	}
	step("all checks passed")
	return 0
}
