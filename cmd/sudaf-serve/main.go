// Command sudaf-serve runs the SUDAF engine behind the resilient HTTP
// serving layer: per-client sessions, prepared statements, streamed
// NDJSON results, overload shedding, and graceful drain on SIGINT or
// SIGTERM.
//
// Usage:
//
//	sudaf-serve -addr :8080 -load sales=sales.csv -load stores=stores.csv
//
// On SIGINT/SIGTERM the server stops accepting work, finishes every
// in-flight request (bounded by -drain-timeout), then closes the
// engine the same way — a deploy never abandons accepted queries.
//
// The -smoke flag runs a self-contained integration exercise instead
// of serving: it boots a server over an in-memory fixture, hammers it
// with concurrent queries and appends, forces a drain mid-burst,
// verifies no work was lost and no goroutine leaked, then boots a
// second server over the same engine and proves the state cache stayed
// warm. Exit code 0 means every check passed; CI runs this under
// -race.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sudaf"
	"sudaf/internal/server"
)

type loadFlags []string

func (l *loadFlags) String() string { return strings.Join(*l, ",") }
func (l *loadFlags) Set(v string) error {
	*l = append(*l, v)
	return nil
}

func main() {
	var loads loadFlags
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	workers := flag.Int("workers", 0, "engine parallelism (0 = NumCPU)")
	maxQueries := flag.Int("max-concurrent-queries", 0, "engine admission cap (0 = none)")
	maxInflight := flag.Int("max-inflight", 0, "server concurrent requests (0 = 16)")
	queueDepth := flag.Int("queue-depth", 0, "admission queue before shedding (0 = 64)")
	maxSessions := flag.Int("max-sessions", 0, "open client sessions (0 = 64)")
	sessionConc := flag.Int("session-concurrency", 0, "per-session concurrent requests (0 = unbounded)")
	maxConns := flag.Int("max-conns", 0, "open TCP connections (0 = unbounded)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "bound on the shutdown drain")
	skipBad := flag.Bool("skip-bad-rows", true, "skip and count malformed CSV rows instead of failing the load")
	smoke := flag.Bool("smoke", false, "run the integration smoke suite and exit")
	flag.Var(&loads, "load", "name=path.csv (repeatable)")
	flag.Parse()

	if *smoke {
		os.Exit(runSmoke())
	}

	eng := sudaf.Open(sudaf.Options{
		Workers:              *workers,
		MaxConcurrentQueries: *maxQueries,
	})
	for _, spec := range loads {
		parts := strings.SplitN(spec, "=", 2)
		if len(parts) != 2 {
			fatal("bad -load %q, want name=path.csv", spec)
		}
		t, skipped, err := sudaf.LoadCSVWith(parts[0], parts[1], sudaf.CSVOptions{SkipBadRows: *skipBad})
		if err != nil {
			fatal("load %s: %v", spec, err)
		}
		if skipped > 0 {
			fmt.Fprintf(os.Stderr, "load %s: skipped %d malformed row(s)\n", parts[0], skipped)
		}
		if err := eng.Register(t); err != nil {
			fatal("register %s: %v", parts[0], err)
		}
	}

	srv, err := server.New(server.Config{
		Session:            eng.Session(),
		MaxInflight:        *maxInflight,
		QueueDepth:         *queueDepth,
		MaxSessions:        *maxSessions,
		SessionConcurrency: *sessionConc,
		MaxConns:           *maxConns,
	})
	if err != nil {
		fatal("%v", err)
	}
	if err := srv.Start(*addr); err != nil {
		fatal("listen: %v", err)
	}
	fmt.Printf("sudaf-serve listening on %s (%d table(s) loaded)\n", srv.Addr(), len(loads))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Fprintln(os.Stderr, "draining...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		fatal("shutdown: %v", err)
	}
	if err := eng.Close(ctx); err != nil {
		fatal("engine close: %v", err)
	}
	fmt.Fprintf(os.Stderr, "drained in %s, no requests abandoned\n",
		time.Since(start).Round(time.Millisecond))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sudaf-serve: "+format+"\n", args...)
	os.Exit(1)
}
