// Command datagen writes the synthetic benchmark datasets to CSV files
// (typed headers readable by sudaf.LoadCSV and the sudaf shell's -load).
//
// Usage:
//
//	datagen -out ./data -tpcds-scale 2 -milan-rows 4000000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sudaf/internal/data"
)

func main() {
	out := flag.String("out", "./data", "output directory")
	scale := flag.Int("tpcds-scale", 1, "TPC-DS-like scale factor (120k rows per unit)")
	milanRows := flag.Int("milan-rows", 1_000_000, "Milan-like row count")
	squares := flag.Int("squares", 10_000, "Milan group cardinality")
	seed := flag.Int64("seed", 20200330, "generator seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal("mkdir: %v", err)
	}
	for _, t := range data.TPCDS(*scale, *seed) {
		path := filepath.Join(*out, t.Name+".csv")
		if err := t.SaveCSVFile(path); err != nil {
			fatal("write %s: %v", path, err)
		}
		fmt.Printf("%s: %d rows\n", path, t.NumRows())
	}
	milan := data.Milan(*milanRows, *squares, *seed+1)
	path := filepath.Join(*out, "milan_data.csv")
	if err := milan.SaveCSVFile(path); err != nil {
		fatal("write %s: %v", path, err)
	}
	fmt.Printf("%s: %d rows\n", path, milan.NumRows())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
