// Regression: the paper's motivating example (Section 2). A linear
// regression slope theta1 over TPC-DS-like sales, executed three ways
// (hardcoded UDAF, SUDAF rewrite, SUDAF with sharing), followed by the
// Q2 reuse scenario and the Q3 view roll-up (RQ3').
package main

import (
	"fmt"
	"time"

	"sudaf"
	"sudaf/internal/data"
)

const q1 = `SELECT ss_item_sk, d_year, avg(ss_list_price),
	avg(ss_sales_price), theta1(ss_list_price, ss_sales_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
	and s_state = 'TN'
GROUP BY ss_item_sk, d_year`

const q2 = `SELECT ss_item_sk, d_year, qm(ss_list_price), stddev(ss_list_price)
FROM store_sales, store, date_dim
WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
	and s_state = 'TN'
GROUP BY ss_item_sk, d_year`

const q3 = `SELECT d_year, qm(ss_list_price), stddev(ss_list_price)
FROM store_sales, store, date_dim, item
WHERE ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
	and ss_store_sk = s_store_sk and i_category = 'Sports'
	and s_state = 'TN' and d_year >= 2000
GROUP BY d_year ORDER BY d_year`

func main() {
	eng := sudaf.Open(sudaf.Options{Workers: 1}) // serial, like PostgreSQL
	for _, t := range data.TPCDS(2, 42) {
		if err := eng.Register(t); err != nil {
			panic(err)
		}
	}
	form, _ := eng.ExplainUDAF("theta1")
	fmt.Println("theta1 decomposes into the five states of RQ1:")
	fmt.Println(" ", form)

	timeQ := func(label, sql string, mode sudaf.Mode) *sudaf.Result {
		start := time.Now()
		res, err := eng.Query(sql, mode)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-34s %8.1f ms  (%d base rows", label,
			float64(time.Since(start).Microseconds())/1000, res.RowsScanned)
		if res.FullCacheHit {
			fmt.Print(", full cache hit")
		}
		if res.UsedView != "" {
			fmt.Printf(", via view %s", res.UsedView)
		}
		fmt.Println(")")
		return res
	}

	fmt.Println("\n— Q1: regression slope per item and year —")
	timeQ("Q1 hardcoded UDAF (baseline)", q1, sudaf.Baseline)
	timeQ("Q1 SUDAF rewrite", q1, sudaf.Rewrite)
	timeQ("Q1 SUDAF share (cold cache)", q1, sudaf.Share)

	fmt.Println("\n— Q2 after Q1: qm and stddev share Q1's partial aggregates —")
	timeQ("Q2 hardcoded UDAF (baseline)", q2, sudaf.Baseline)
	timeQ("Q2 SUDAF share (warm cache)", q2, sudaf.Share)

	fmt.Println("\n— Q3: coarser grouping + extra join; V1 enables RQ3' —")
	timeQ("Q3 SUDAF (no view)", q3, sudaf.Rewrite)
	if err := eng.Materialize("v1", q1); err != nil {
		panic(err)
	}
	eng.ClearCache() // isolate the view effect
	res := timeQ("Q3 as RQ3' (view roll-up)", q3, sudaf.Rewrite)

	fmt.Println("\nQ3 result:")
	for i := 0; i < res.Table.NumRows(); i++ {
		fmt.Printf("  year=%s qm=%s stddev=%s\n",
			res.Table.Cols[0].ValueString(i),
			res.Table.Cols[1].ValueString(i),
			res.Table.Cols[2].ValueString(i))
	}
}
