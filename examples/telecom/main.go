// Telecom: the paper's Milan workload (query models 1–2, Figures 6–9).
// Runs the AS2 aggregate sequence with a prefetched moment sketch and
// shows which aggregates are answered without touching base data —
// everything except the harmonic mean, whose Σx⁻¹ state the sketch does
// not carry.
package main

import (
	"fmt"
	"time"

	"sudaf"
	"sudaf/internal/data"
)

func main() {
	eng := sudaf.Open(sudaf.Options{}) // parallel, like Spark
	milan := data.Milan(2_000_000, 10_000, 99)
	if err := eng.Register(milan); err != nil {
		panic(err)
	}

	// Prefetch a moment sketch MS(k=10) per square: min, max, count,
	// Σx..Σx^10, Σln x..Σln^10 x — 23 aggregation states.
	fmt.Println("prefetching moment sketch per square_id ...")
	start := time.Now()
	if _, err := eng.Query(
		"SELECT square_id, moment_sketch(internet_traffic) FROM milan_data GROUP BY square_id",
		sudaf.Share); err != nil {
		panic(err)
	}
	fmt.Printf("prefetch: %v\n\n", time.Since(start).Round(time.Millisecond))

	// The AS2 sequence of the paper.
	seq := []string{"max", "min", "sum", "avg", "count", "std", "var", "cm", "gm", "hm", "qm"}
	for _, agg := range seq {
		call := agg + "(internet_traffic)"
		if agg == "count" {
			call = "count(*)"
		}
		q := "SELECT square_id, " + call +
			" FROM milan_data GROUP BY square_id ORDER BY square_id LIMIT 20"
		start := time.Now()
		res, err := eng.Query(q, sudaf.Share)
		if err != nil {
			panic(err)
		}
		status := "computed from base data"
		if res.FullCacheHit {
			status = "answered from cached states"
		}
		fmt.Printf("%-6s %10.2f ms  %s\n", agg,
			float64(time.Since(start).Microseconds())/1000, status)
	}
	st := eng.CacheStats()
	fmt.Printf("\ncache: %d exact hits, %d shared hits (Theorem 4.1), %d misses\n",
		st.ExactHits, st.SharedHits, st.Misses)
}
