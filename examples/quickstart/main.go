// Quickstart: define UDAFs as mathematical expressions and watch SUDAF
// share partial aggregates between them.
package main

import (
	"fmt"
	"math/rand"

	"sudaf"
)

func main() {
	eng := sudaf.Open(sudaf.Options{})

	// A small sales table.
	rng := rand.New(rand.NewSource(7))
	t := sudaf.NewTable("sales",
		sudaf.NewColumn("region", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	for i := 0; i < 500_000; i++ {
		t.Col("region").AppendInt(int64(rng.Intn(8)))
		t.Col("price").AppendFloat(1 + rng.Float64()*99)
	}
	if err := eng.Register(t); err != nil {
		panic(err)
	}

	// Define a UDAF declaratively: no initialize/update/merge/evaluate
	// boilerplate, just the math. (qm, gm, stddev, … are pre-registered;
	// we define our own here to show the mechanism.)
	if err := eng.DefineUDAF("rms", []string{"x"}, "sqrt(sum(x^2)/count())"); err != nil {
		panic(err)
	}
	form, _ := eng.ExplainUDAF("rms")
	fmt.Println("canonical form:", form)

	// First query computes states (count, Σx²) from base data.
	res1, err := eng.Query("SELECT region, rms(price) FROM sales GROUP BY region ORDER BY region", sudaf.Share)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rms query: %d groups, scanned %d rows\n", res1.Groups, res1.RowsScanned)

	// Standard deviation needs {count, Σx, Σx²}: Σx² and count are served
	// from the cache; only Σx requires a scan... and variance after that
	// is answered with zero base data access.
	res2, err := eng.Query("SELECT region, stddev(price) FROM sales GROUP BY region ORDER BY region", sudaf.Share)
	if err != nil {
		panic(err)
	}
	fmt.Printf("stddev query: scanned %d rows\n", res2.RowsScanned)

	res3, err := eng.Query("SELECT region, variance(price), avg(price) FROM sales GROUP BY region ORDER BY region", sudaf.Share)
	if err != nil {
		panic(err)
	}
	fmt.Printf("variance+avg query: scanned %d rows (full cache hit: %v)\n",
		res3.RowsScanned, res3.FullCacheHit)

	st := eng.CacheStats()
	fmt.Printf("cache: %d lookups, %d exact hits, %d shared hits\n",
		st.Lookups, st.ExactHits, st.SharedHits)
	for i := 0; i < res3.Table.NumRows() && i < 3; i++ {
		fmt.Printf("region %s: variance=%s avg=%s\n",
			res3.Table.Cols[0].ValueString(i),
			res3.Table.Cols[1].ValueString(i),
			res3.Table.Cols[2].ValueString(i))
	}
}
