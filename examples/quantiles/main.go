// Quantiles: approximate percentiles from a moment sketch (the paper's
// hardcoded-terminating-function scenario, §4.1) compared against exact
// sorted-sample quantiles.
package main

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"sudaf"
	"sudaf/internal/data"
)

func main() {
	eng := sudaf.Open(sudaf.Options{})
	milan := data.Milan(1_000_000, 100, 5)
	if err := eng.Register(milan); err != nil {
		panic(err)
	}
	// A custom quantile at p90, on top of the pre-registered
	// approx_median / approx_first_quantile / approx_third_quantile.
	if err := eng.DefineSketchUDAF("approx_p90", 10, 0.9); err != nil {
		panic(err)
	}

	res, err := eng.Query(`SELECT square_id, approx_first_quantile(internet_traffic),
		approx_median(internet_traffic), approx_third_quantile(internet_traffic),
		approx_p90(internet_traffic)
	FROM milan_data GROUP BY square_id ORDER BY square_id LIMIT 5`, sudaf.Share)
	if err != nil {
		panic(err)
	}

	// Exact quantiles for comparison.
	bySquare := map[int64][]float64{}
	for i := 0; i < milan.NumRows(); i++ {
		sq := milan.Col("square_id").I[i]
		bySquare[sq] = append(bySquare[sq], milan.Col("internet_traffic").F[i])
	}
	exact := func(sq int64, q float64) float64 {
		s := bySquare[sq]
		sort.Float64s(s)
		return s[int(q*float64(len(s)-1))]
	}

	fmt.Println("square   q25(est/exact)      median(est/exact)    q75(est/exact)      p90(est/exact)")
	for i := 0; i < res.Table.NumRows(); i++ {
		sq := res.Table.Cols[0].AsInt(i)
		fmt.Printf("%4d   ", sq)
		for j, q := range []float64{0.25, 0.5, 0.75, 0.9} {
			est := res.Table.Cols[j+1].AsFloat(i)
			ex := exact(sq, q)
			fmt.Printf("%8.1f/%-8.1f ", est, ex)
			if math.Abs(est-ex) > 0.35*ex+5 {
				fmt.Print("(!)")
			}
		}
		fmt.Println()
	}

	// The sketch states also serve ordinary aggregates: gm via Σln x.
	eng.ResetCacheStats()
	gm, err := eng.Query("SELECT square_id, gm(internet_traffic) FROM milan_data GROUP BY square_id LIMIT 1", sudaf.Share)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ngm after sketch: full cache hit = %v (Πx = e^(Σln x), Theorem 4.1 case 2.3)\n",
		gm.FullCacheHit)
	_ = rand.Int
}
