package sudaf_test

// One benchmark per paper artifact (see DESIGN.md §5 for the experiment
// index). These run at reduced scale so `go test -bench=.` finishes in
// minutes; cmd/sudaf-bench regenerates the figures at full scale.
//
//	Fig 1(a)  BenchmarkFig1a_*   Q1: baseline UDAF vs cov/var vs SUDAF
//	Fig 1(b)  BenchmarkFig1b_*   Q2 after Q1: sharing
//	Fig 1(c)  BenchmarkFig1c_*   Q3 vs RQ3' (view roll-up)
//	Fig 2     BenchmarkFig2_*    the same, parallel engine
//	Fig 6/8   BenchmarkFig6_*    query models × systems (Milan, serial)
//	Fig 7/9   BenchmarkFig7_*    the same, parallel
//	Fig 10    BenchmarkFig10_*   random-sequence steady state
//	Table 1   BenchmarkTable1    canonicalization cost
//	Fig 4/5   BenchmarkSpace     symbolic space precomputation (110 ms
//	                             in the paper)

import (
	"sync"
	"testing"

	"sudaf"
	"sudaf/internal/data"
)

const (
	benchQ1 = `SELECT ss_item_sk, d_year, avg(ss_list_price),
		avg(ss_sales_price), theta1(ss_list_price, ss_sales_price)
	FROM store_sales, store, date_dim
	WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
		and s_state = 'TN'
	GROUP BY ss_item_sk, d_year`

	benchQ1CovVar = `SELECT ss_item_sk, d_year, avg(ss_list_price),
		avg(ss_sales_price),
		covar_pop(ss_list_price, ss_sales_price)/var_pop(ss_list_price)
	FROM store_sales, store, date_dim
	WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
		and s_state = 'TN'
	GROUP BY ss_item_sk, d_year`

	benchQ2 = `SELECT ss_item_sk, d_year, qm(ss_list_price), stddev(ss_list_price)
	FROM store_sales, store, date_dim
	WHERE ss_sold_date_sk = d_date_sk and ss_store_sk = s_store_sk
		and s_state = 'TN'
	GROUP BY ss_item_sk, d_year`

	benchQ3 = `SELECT d_year, qm(ss_list_price), stddev(ss_list_price)
	FROM store_sales, store, date_dim, item
	WHERE ss_sold_date_sk = d_date_sk and ss_item_sk = i_item_sk
		and ss_store_sk = s_store_sk and i_category = 'Sports'
		and s_state = 'TN' and d_year >= 2000
	GROUP BY d_year`

	benchQM1 = `SELECT qm(internet_traffic) FROM milan_data`
	benchQM2 = `SELECT square_id, qm(internet_traffic) FROM milan_data
		GROUP BY square_id ORDER BY square_id LIMIT 20`
)

var (
	serialOnce sync.Once
	serialEng  *sudaf.Engine
	parOnce    sync.Once
	parEng     *sudaf.Engine
)

// benchEngine lazily builds a shared engine (serial or parallel) with
// TPC-DS scale 1 and 1M Milan rows.
func benchEngine(b *testing.B, parallel bool) *sudaf.Engine {
	b.Helper()
	build := func(workers int) *sudaf.Engine {
		eng := sudaf.Open(sudaf.Options{Workers: workers})
		for _, t := range data.TPCDS(1, 7) {
			if err := eng.Register(t); err != nil {
				b.Fatal(err)
			}
		}
		if err := eng.Register(data.Milan(1_000_000, 10_000, 8)); err != nil {
			b.Fatal(err)
		}
		return eng
	}
	if parallel {
		parOnce.Do(func() { parEng = build(0) })
		return parEng
	}
	serialOnce.Do(func() { serialEng = build(1) })
	return serialEng
}

// benchQuery times repeated executions of one query in one mode.
func benchQuery(b *testing.B, eng *sudaf.Engine, sql string, mode sudaf.Mode) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Query(sql, mode); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figure 1 (serial / "PostgreSQL") ----

func BenchmarkFig1a_Q1_BaselineUDAF(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQ1, sudaf.Baseline)
}

func BenchmarkFig1a_Q1_CovVar(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQ1CovVar, sudaf.Baseline)
}

func BenchmarkFig1a_Q1_SUDAF(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQ1, sudaf.Rewrite)
}

func BenchmarkFig1b_Q2_BaselineUDAF(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQ2, sudaf.Baseline)
}

func BenchmarkFig1b_Q2_SUDAFNoShare(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQ2, sudaf.Rewrite)
}

func BenchmarkFig1b_Q2_SUDAFShareAfterQ1(b *testing.B) {
	eng := benchEngine(b, false)
	eng.ClearCache()
	if _, err := eng.Query(benchQ1, sudaf.Share); err != nil {
		b.Fatal(err)
	}
	benchQuery(b, eng, benchQ2, sudaf.Share)
}

func BenchmarkFig1c_Q3_Direct(b *testing.B) {
	eng := benchEngine(b, false)
	eng.EnableViews(false)
	defer eng.EnableViews(true)
	benchQuery(b, eng, benchQ3, sudaf.Rewrite)
}

func BenchmarkFig1c_RQ3_ViewRollup(b *testing.B) {
	eng := benchEngine(b, false)
	if err := eng.Materialize("v1_bench", benchQ1); err != nil {
		b.Fatal(err)
	}
	defer eng.DropView("v1_bench")
	eng.ClearCache()
	eng.EnableViews(true)
	benchQuery(b, eng, benchQ3, sudaf.Rewrite)
}

// ---- Figure 2 (parallel / "Spark") ----

func BenchmarkFig2a_Q1_BaselineUDAF(b *testing.B) {
	benchQuery(b, benchEngine(b, true), benchQ1, sudaf.Baseline)
}

func BenchmarkFig2a_Q1_SUDAF(b *testing.B) {
	benchQuery(b, benchEngine(b, true), benchQ1, sudaf.Rewrite)
}

func BenchmarkFig2b_Q2_SUDAFShareAfterQ1(b *testing.B) {
	eng := benchEngine(b, true)
	eng.ClearCache()
	if _, err := eng.Query(benchQ1, sudaf.Share); err != nil {
		b.Fatal(err)
	}
	benchQuery(b, eng, benchQ2, sudaf.Share)
}

// ---- Figures 6/8 (Milan, serial) and 7/9 (parallel) ----

func BenchmarkFig6_QM1_Baseline(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQM1, sudaf.Baseline)
}

func BenchmarkFig6_QM1_SUDAFNoShare(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQM1, sudaf.Rewrite)
}

func BenchmarkFig6_QM1_SUDAFShareWarm(b *testing.B) {
	eng := benchEngine(b, false)
	eng.ClearCache()
	if _, err := eng.Query(benchQM1, sudaf.Share); err != nil {
		b.Fatal(err)
	}
	benchQuery(b, eng, benchQM1, sudaf.Share)
}

func BenchmarkFig6_QM2_Baseline(b *testing.B) {
	benchQuery(b, benchEngine(b, false), benchQM2, sudaf.Baseline)
}

func BenchmarkFig6_QM2_SUDAFShareWarm(b *testing.B) {
	eng := benchEngine(b, false)
	eng.ClearCache()
	if _, err := eng.Query(benchQM2, sudaf.Share); err != nil {
		b.Fatal(err)
	}
	benchQuery(b, eng, benchQM2, sudaf.Share)
}

func BenchmarkFig7_QM1_Baseline(b *testing.B) {
	benchQuery(b, benchEngine(b, true), benchQM1, sudaf.Baseline)
}

func BenchmarkFig7_QM1_SUDAFNoShare(b *testing.B) {
	benchQuery(b, benchEngine(b, true), benchQM1, sudaf.Rewrite)
}

// ---- Figure 10: steady-state random sequence step ----

func BenchmarkFig10_RandomStep_Share(b *testing.B) {
	eng := benchEngine(b, true)
	eng.ClearCache()
	aggs := []string{"qm", "cm", "std", "var", "avg", "skewness", "kurtosis"}
	// Warm the cache with one pass.
	for _, a := range aggs {
		q := "SELECT square_id, " + a + "(internet_traffic) FROM milan_data GROUP BY square_id ORDER BY square_id LIMIT 20"
		if _, err := eng.Query(q, sudaf.Share); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := aggs[i%len(aggs)]
		q := "SELECT square_id, " + a + "(internet_traffic) FROM milan_data GROUP BY square_id ORDER BY square_id LIMIT 20"
		if _, err := eng.Query(q, sudaf.Share); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table 1 and the symbolic space ----

func BenchmarkTable1_Canonicalize(b *testing.B) {
	eng := sudaf.Open(sudaf.Options{Workers: 1})
	for i := 0; i < b.N; i++ {
		if err := eng.DefineUDAF("bench_corr", []string{"x", "y"},
			"(n*sum(x*y)-sum(x)*sum(y))/(sqrt(n*sum(x^2)-sum(x)^2)*sqrt(n*sum(y^2)-sum(y)^2))"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpace_Precompute(b *testing.B) {
	// The paper reports 110 ms for precomputing saggs_2 relationships.
	for i := 0; i < b.N; i++ {
		eng := sudaf.Open(sudaf.Options{Workers: 1, SymbolicL: 2})
		_ = eng
	}
}
