package sudaf_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"sudaf"
	"sudaf/internal/faultinject"
)

// chaosEngine builds a two-table engine so the chaos query exercises the
// scan, join, worker and cache fault points in one statement.
func chaosEngine(t *testing.T) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	rng := rand.New(rand.NewSource(7))
	sales := sudaf.NewTable("sales",
		sudaf.NewColumn("s_store", sudaf.Int),
		sudaf.NewColumn("s_item", sudaf.Int),
		sudaf.NewColumn("price", sudaf.Float))
	for i := 0; i < 20_000; i++ {
		sales.Col("s_store").AppendInt(int64(rng.Intn(4)))
		sales.Col("s_item").AppendInt(int64(rng.Intn(8)))
		sales.Col("price").AppendFloat(1 + rng.Float64()*99)
	}
	stores := sudaf.NewTable("stores",
		sudaf.NewColumn("st_id", sudaf.Int),
		sudaf.NewColumn("st_state", sudaf.String))
	for i, st := range []string{"TN", "CA", "TN", "NY"} {
		stores.Col("st_id").AppendInt(int64(i))
		stores.Col("st_state").AppendString(st)
	}
	if err := eng.Register(sales); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(stores); err != nil {
		t.Fatal(err)
	}
	return eng
}

const chaosQuery = `SELECT s_item, qm(price), sum(price) FROM sales, stores
	WHERE s_store = st_id AND st_state = 'TN' GROUP BY s_item ORDER BY s_item`

func sameResult(t *testing.T, a, b *sudaf.Result) {
	t.Helper()
	if a.Table.NumRows() != b.Table.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", a.Table.NumRows(), b.Table.NumRows())
	}
	for c := 1; c < len(a.Table.Cols); c++ {
		for i := range a.Table.Cols[c].F {
			av, bv := a.Table.Cols[c].F[i], b.Table.Cols[c].F[i]
			if math.Abs(av-bv) > 1e-9*(1+math.Abs(av)) {
				t.Fatalf("col %d row %d: %v vs %v", c, i, av, bv)
			}
		}
	}
}

// TestChaosSweep arms every fault point with every fault kind and asserts
// the invariant of the failure model: an injected fault surfaces as a
// clean error or a degraded-but-correct result — never a crash and never
// a wrong answer.
func TestChaosSweep(t *testing.T) {
	defer faultinject.Reset()
	eng := chaosEngine(t)

	// Fault-free reference, and a warm cache so cache.get points fire.
	faultinject.Reset()
	want, err := eng.Query(chaosQuery, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}

	kinds := []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay}
	for _, point := range faultinject.Points() {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", point, kind), func(t *testing.T) {
				defer faultinject.Reset()
				faultinject.Arm(point, faultinject.Spec{Kind: kind, Delay: time.Millisecond})
				res, err := eng.Query(chaosQuery, sudaf.Share)
				fired := faultinject.Fired(point) > 0

				switch {
				case err != nil:
					// A clean error is acceptable for every point except the
					// cache, which must degrade instead.
					if point == faultinject.PointCacheGet {
						t.Fatalf("cache fault must fall back, not fail: %v", err)
					}
				case kind == faultinject.KindDelay || point == faultinject.PointCacheGet:
					// Delays and cache faults never change the answer.
					sameResult(t, res, want)
					if point == faultinject.PointCacheGet && kind != faultinject.KindDelay &&
						fired && len(res.Events) == 0 {
						t.Error("survived cache fault should be recorded in Events")
					}
				default:
					// Error/panic kinds that did not fire (point not on this
					// query's path) must still produce the right answer.
					if fired {
						t.Fatalf("%s/%s fired but query succeeded without degradation path", point, kind)
					}
					sameResult(t, res, want)
				}
			})
		}
	}

	// The engine still works after the whole sweep.
	faultinject.Reset()
	res, err := eng.Query(chaosQuery, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, want)
}

// TestChaosSeeds replays seeded chaos plans — any failure reproduces from
// its seed alone.
func TestChaosSeeds(t *testing.T) {
	defer faultinject.Reset()
	eng := chaosEngine(t)
	faultinject.Reset()
	want, err := eng.Query(chaosQuery, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 20; seed++ {
		faultinject.Reset()
		point, spec := faultinject.PlanFromSeed(seed)
		res, err := eng.Query(chaosQuery, sudaf.Rewrite)
		if err != nil {
			if point == faultinject.PointCacheGet {
				t.Errorf("seed %d (%s %v): cache fault must not fail a query: %v", seed, point, spec.Kind, err)
			}
			continue // clean error: acceptable
		}
		sameResult(t, res, want)
	}
	faultinject.Reset()
}
