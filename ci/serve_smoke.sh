#!/usr/bin/env bash
# Serving-layer integration smoke: boot sudaf-serve against an
# in-memory fixture and run its built-in -smoke suite under the race
# detector — concurrent queries and appends over real sockets, a forced
# drain mid-burst, a goroutine-leak check, and a warm-cache restart.
# The binary exits non-zero if any check fails.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== sudaf-serve -smoke (race) =="
go run -race ./cmd/sudaf-serve -smoke

# And the ordinary serve path boots, answers health, and drains on
# SIGTERM within its timeout.
echo "== sudaf-serve boot/drain =="
go build -o /tmp/sudaf-serve ./cmd/sudaf-serve
/tmp/sudaf-serve -addr 127.0.0.1:19171 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT
for i in $(seq 1 50); do
  if curl -sf http://127.0.0.1:19171/v1/health >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -sf http://127.0.0.1:19171/v1/health | grep -q '"status":"ok"' || {
  echo "health check failed"; exit 1; }
kill -TERM "$PID"
wait "$PID" || { echo "server exited non-zero on SIGTERM"; exit 1; }
echo "serve smoke OK"
