#!/usr/bin/env bash
# Documentation checks: vet, local markdown links, and doc-referenced
# identifiers. Run from the repository root (CI does), or from anywhere —
# the script cds to its parent directory. No network, no dependencies
# beyond the go toolchain and POSIX tools.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
err() {
  echo "FAIL: $*" >&2
  fail=1
}

echo "== go vet =="
go vet ./...

echo "== markdown links =="
# Every relative link/image target in tracked markdown must exist.
# External (scheme://) and pure-anchor links are skipped.
for md in *.md docs/*.md; do
  [ -f "$md" ] || continue
  dir=$(dirname "$md")
  # Extract (target) of [text](target), one per line; tolerate several
  # links per line. Fenced code blocks and inline code spans are stripped
  # first — state keys like sum[ln(x)](price) are not links.
  awk '/^[[:space:]]*```/ { fence = !fence; next } !fence' "$md" | sed -E 's/`[^`]*`//g' |
    { grep -oE '\]\(([^)#]+)(#[^)]*)?\)' || true; } | sed -E 's/^\]\(//; s/#[^)]*//; s/\)$//' |
    while read -r target; do
      [ -z "$target" ] && continue
      case "$target" in
        *://*|mailto:*) continue ;;
      esac
      if [ ! -e "$dir/$target" ] && [ ! -e "$target" ]; then
        echo "FAIL: $md links to missing file: $target" >&2
        touch .docs-link-failed
      fi
    done
done
if [ -e .docs-link-failed ]; then
  rm -f .docs-link-failed
  fail=1
fi

echo "== README reachability =="
# Every doc under docs/ must be linked (or at least named) from the
# README — an unreferenced doc is invisible to readers and rots.
for md in docs/*.md; do
  [ -f "$md" ] || continue
  if ! grep -q "$md" README.md; then
    err "README.md never references $md"
  fi
done

echo "== DESIGN.md section contiguity =="
# Numbered sections must run 1..N without gaps or duplicates, so PRs
# appending sections cannot silently collide or skip numbers.
want=1
for n in $(grep -oE '^## [0-9]+' DESIGN.md | awk '{print $2}'); do
  if [ "$n" -ne "$want" ]; then
    err "DESIGN.md sections are not contiguous: expected §$want, found §$n"
    want=$((n + 1))
  else
    want=$((want + 1))
  fi
done

echo "== doc-referenced identifiers =="
# Backticked dotted references like `Engine.ServeMetrics`,
# `Options.TraceRate`, `Result.Trace` or `sudaf.Open` in user-facing docs
# must name identifiers that exist in the Go sources, so the docs cannot
# drift silently when the API changes.
docs="README.md docs/OBSERVABILITY.md docs/SERVING.md docs/WINDOWS.md"
refs=$(grep -ohE '`(sudaf|Engine|Options|Result|Trace|Span|Explain|AppendResult|Server|Client|Config)\.[A-Z][A-Za-z]*' $docs | tr -d '`' | sort -u || true)
for ref in $refs; do
  ident=${ref#*.}
  if ! grep -qrE "(func |func \([^)]*\) |\s)${ident}[[:space:](]" --include='*.go' . ; then
    err "$docs mention \`$ref\` but no Go source defines $ident"
  fi
done

# Metric families documented in OBSERVABILITY.md must be registered in
# the source, and vice versa.
doc_metrics=$(grep -ohE 'sudaf_[a-z_]+_(total|seconds)' docs/OBSERVABILITY.md docs/WINDOWS.md | sort -u)
for m in $doc_metrics; do
  if ! grep -qr --include='*.go' "\"$m\"" internal/; then
    err "docs documents metric $m but no source registers it"
  fi
done
src_metrics=$(grep -ohE '"sudaf_[a-z_]+_(total|seconds)"' internal/core/metrics.go | tr -d '"' | sort -u)
for m in $src_metrics; do
  if ! grep -q "$m" docs/OBSERVABILITY.md; then
    err "metric $m is registered but undocumented in docs/OBSERVABILITY.md"
  fi
done

# Likewise for the serving layer: every sudaf_server_* family mentioned
# in docs/SERVING.md must be registered, and every registered family
# must be documented there. Server families include plain gauges, so
# the pattern is not limited to the _total/_seconds suffixes.
doc_srv=$(grep -ohE 'sudaf_server_[a-z_]+' docs/SERVING.md docs/WINDOWS.md | sort -u)
for m in $doc_srv; do
  if ! grep -qr --include='*.go' "\"$m\"" internal/server/; then
    err "docs/SERVING.md documents metric $m but internal/server does not register it"
  fi
done
srv_metrics=$(grep -ohE '"sudaf_server_[a-z_]+"' internal/server/metrics.go | tr -d '"' | sort -u)
for m in $srv_metrics; do
  if ! grep -q "$m" docs/SERVING.md; then
    err "metric $m is registered but undocumented in docs/SERVING.md"
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "documentation checks failed" >&2
  exit 1
fi
echo "docs OK"
