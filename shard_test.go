package sudaf_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"sudaf"
	"sudaf/internal/faultinject"
)

// ---- shard-differential battery ----
//
// A sharded engine (Options.Shards > 1) must be observationally
// indistinguishable from an unsharded one: same result bits, same row
// accounting, same cache-hit breakdown, for every mode, on adversarial
// data (NaN, ±Inf meeting in one group, empty append batches folded in,
// single-row groups, dictionary string keys). The battery reuses the
// ingestion tests' tr data model, whose values are integer-valued so
// every ⊕ reduction is exact and comparisons are bit-for-bit.

// shardQueries is the differential query list: grouped/global/filtered
// aggregation, dict-string group keys, a fact⊕dimension join, and
// UDAFs whose states (Σx, Σx², Σx³, n, min, max) are exact on integer
// data so scatter-gather must reproduce them bit-identically.
var shardQueries = []struct {
	sql  string
	keys int
}{
	{"SELECT g, count(*), min(v), max(v) FROM tr GROUP BY g", 1},
	{"SELECT tag, sum(v), qm(v) FROM tr GROUP BY tag", 1},
	{"SELECT sum(v), count(*) FROM tr", 0},
	{"SELECT g, sum(v) FROM tr WHERE v > 0 GROUP BY g", 1},
	{"SELECT g, avg(v), var(v) FROM tr GROUP BY g", 1},
	{"SELECT g, skewness(v), cm(v) FROM tr GROUP BY g", 1},
	{"SELECT w, sum(v) FROM tr, trdim WHERE g = d_g GROUP BY w ORDER BY w", 1},
}

// trDim is a small dimension table joined against tr's group column.
func trDim() *sudaf.Table {
	d := sudaf.NewTable("trdim",
		sudaf.NewColumn("d_g", sudaf.Int),
		sudaf.NewColumn("w", sudaf.Int))
	for g := int64(0); g < 9; g++ {
		d.Col("d_g").AppendInt(g)
		d.Col("w").AppendInt(g % 3)
	}
	return d
}

// openShardTR builds an engine over a fresh copy of the adversarial tr
// data (all ingest batches concatenated) plus the dimension table.
func openShardTR(t *testing.T, shards int) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 2, Shards: shards})
	if err := eng.Register(concatBatches(ingestBatches(), 4)); err != nil {
		t.Fatal(err)
	}
	if err := eng.Register(trDim()); err != nil {
		t.Fatal(err)
	}
	return eng
}

// sameStats compares the per-query observability record, excluding the
// timing fields.
func sameStats(t *testing.T, label string, a, b *sudaf.Result) {
	t.Helper()
	if a.RowsScanned != b.RowsScanned {
		t.Errorf("%s: RowsScanned %d vs %d", label, a.RowsScanned, b.RowsScanned)
	}
	if a.Groups != b.Groups {
		t.Errorf("%s: Groups %d vs %d", label, a.Groups, b.Groups)
	}
	if a.FullCacheHit != b.FullCacheHit {
		t.Errorf("%s: FullCacheHit %v vs %v", label, a.FullCacheHit, b.FullCacheHit)
	}
	as, bs := a.Stats, b.Stats
	if as.CacheExactHits != bs.CacheExactHits || as.CacheSharedHits != bs.CacheSharedHits ||
		as.CacheSignHits != bs.CacheSignHits || as.CacheMisses != bs.CacheMisses {
		t.Errorf("%s: cache stats differ: %+v vs %+v", label, as, bs)
	}
	if fmt.Sprint(as.Kernels) != fmt.Sprint(bs.Kernels) {
		t.Errorf("%s: kernels differ: %v vs %v", label, as.Kernels, bs.Kernels)
	}
}

// TestShardDifferentialBattery runs every query in every mode at shard
// counts {1, 2, 3, 7} — cold, then warm — and demands bit-identical
// results and identical row/cache accounting against an unsharded
// reference engine walked through the same sequence.
func TestShardDifferentialBattery(t *testing.T) {
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		for _, shards := range []int{1, 2, 3, 7} {
			t.Run(fmt.Sprintf("%v/shards=%d", mode, shards), func(t *testing.T) {
				ref := openShardTR(t, 0)
				shd := openShardTR(t, shards)
				for pass := 0; pass < 2; pass++ { // cold, then warm
					for _, q := range shardQueries {
						label := fmt.Sprintf("pass %d %q", pass, q.sql)
						want, err := ref.Query(q.sql, mode)
						if err != nil {
							t.Fatalf("%s: reference: %v", label, err)
						}
						got, err := shd.Query(q.sql, mode)
						if err != nil {
							t.Fatalf("%s: sharded: %v", label, err)
						}
						if diff := sameResultMaps(resultMap(want, q.keys), resultMap(got, q.keys)); diff != "" {
							t.Fatalf("%s: %s", label, diff)
						}
						sameStats(t, label, want, got)
					}
				}
				st := shd.ShardStats()
				switch {
				case shards <= 1:
					if st.Shards != 0 || st.Queries != 0 {
						t.Errorf("shards<=1 must be unsharded, stats %+v", st)
					}
				case mode == sudaf.Baseline:
					if st.Queries != 0 {
						t.Errorf("baseline mode must not distribute, stats %+v", st)
					}
				default:
					// The battery is vacuous unless queries really scattered.
					if st.Queries == 0 {
						t.Errorf("no query distributed at %d shards: %+v", shards, st)
					}
					if st.Scans < st.Queries*int64(shards) {
						t.Errorf("expected ≥ %d worker scans, got %+v", st.Queries*int64(shards), st)
					}
				}
			})
		}
	}
}

// TestShardTinyTables covers shard counts exceeding the row count:
// empty shards must contribute clean ⊕-identity partials.
func TestShardTinyTables(t *testing.T) {
	build := func() *sudaf.Table {
		tb := trSchema()
		addRow(tb, 1, "a", 4)
		addRow(tb, 1, "b", 2)
		addRow(tb, 3, "a", 7)
		return tb
	}
	for _, rows := range []int{0, 1, 3} {
		t.Run(fmt.Sprintf("rows=%d", rows), func(t *testing.T) {
			mk := func(shards int) *sudaf.Engine {
				eng := sudaf.Open(sudaf.Options{Workers: 2, Shards: shards})
				full := build()
				tb := trSchema()
				for i := 0; i < rows; i++ {
					addRow(tb, full.Col("g").I[i], full.Col("tag").StringAt(i), full.Col("v").F[i])
				}
				if err := eng.Register(tb); err != nil {
					t.Fatal(err)
				}
				return eng
			}
			ref, shd := mk(0), mk(7)
			for _, q := range []struct {
				sql  string
				keys int
			}{
				{"SELECT g, sum(v), count(*) FROM tr GROUP BY g", 1},
				{"SELECT sum(v), count(*), min(v), max(v) FROM tr", 0},
			} {
				want, err := ref.Query(q.sql, sudaf.Share)
				if err != nil {
					t.Fatal(err)
				}
				got, err := shd.Query(q.sql, sudaf.Share)
				if err != nil {
					t.Fatal(err)
				}
				if diff := sameResultMaps(resultMap(want, q.keys), resultMap(got, q.keys)); diff != "" {
					t.Fatalf("%q: %s", q.sql, diff)
				}
			}
		})
	}
}

// ---- shard chaos ----

var shardChaosPoints = []string{
	faultinject.PointShardScan,
	faultinject.PointShardMerge,
	faultinject.PointShardStall,
}

// TestShardChaosSweep arms each shard fault point with each kind on a
// sharded engine. Error and panic kinds must surface as exactly one
// typed error (ErrShard) with no partial result and no leaked
// goroutines; delays must not change the answer; and the engine must
// keep working after the sweep.
func TestShardChaosSweep(t *testing.T) {
	defer faultinject.Reset()
	eng := openShardTR(t, 3)
	const sql = "SELECT g, sum(v), qm(v) FROM tr GROUP BY g"

	faultinject.Reset()
	want, err := eng.Query(sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}

	baseline := runtime.NumGoroutine()
	kinds := []faultinject.Kind{faultinject.KindError, faultinject.KindPanic, faultinject.KindDelay}
	for _, point := range shardChaosPoints {
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", point, kind), func(t *testing.T) {
				defer faultinject.Reset()
				faultinject.Arm(point, faultinject.Spec{Kind: kind, Delay: time.Millisecond})
				// Rewrite mode: no caches anywhere, so the fault point is on
				// every query's path.
				res, err := eng.Query(sql, sudaf.Rewrite)
				fired := faultinject.Fired(point) > 0
				if kind == faultinject.KindDelay {
					if err != nil {
						t.Fatalf("delay must not fail the query: %v", err)
					}
					if diff := sameResultMaps(resultMap(want, 1), resultMap(res, 1)); diff != "" {
						t.Fatalf("delay changed the answer: %s", diff)
					}
					return
				}
				if !fired {
					t.Fatalf("%s did not fire on a sharded query", point)
				}
				if err == nil {
					t.Fatal("injected shard fault must fail the query")
				}
				if res != nil {
					t.Fatal("failed query must not return a partial result")
				}
				if !errors.Is(err, sudaf.ErrShard) {
					t.Fatalf("error must wrap ErrShard: %v", err)
				}
			})
		}
	}

	// No goroutine leaks: cancelled/panicked scatters must be awaited.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Errorf("goroutine leak: %d after sweep, baseline %d", n, baseline)
	}

	faultinject.Reset()
	res, err := eng.Query(sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sameResultMaps(resultMap(want, 1), resultMap(res, 1)); diff != "" {
		t.Fatalf("engine damaged after sweep: %s", diff)
	}
}

// TestShardCancellation checks a deadline expiring mid-scatter surfaces
// as ErrCanceled (the shard wrapper keeps the cause).
func TestShardCancellation(t *testing.T) {
	defer faultinject.Reset()
	eng := openShardTR(t, 3)
	faultinject.Arm(faultinject.PointShardScan, faultinject.Spec{Kind: faultinject.KindDelay, Delay: 300 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := eng.QueryContext(ctx, "SELECT g, sum(v) FROM tr GROUP BY g", sudaf.Rewrite)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, sudaf.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestShardStallDuringClose arms a coordinator stall and closes the
// engine while the scatter is in flight: Close must drain — wait for
// the stalled query to finish cleanly — not abandon it.
func TestShardStallDuringClose(t *testing.T) {
	defer faultinject.Reset()
	eng := openShardTR(t, 3)
	faultinject.Arm(faultinject.PointShardStall, faultinject.Spec{Kind: faultinject.KindDelay, Delay: 300 * time.Millisecond})

	type out struct {
		res *sudaf.Result
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := eng.Query("SELECT g, sum(v) FROM tr GROUP BY g", sudaf.Rewrite)
		done <- out{res, err}
	}()
	// Wait until the query is admitted (not a fixed sleep: under a loaded
	// CI runner the goroutine may take a while to start, and Close must
	// not win the race to admission).
	for deadline := time.Now().Add(5 * time.Second); eng.Stats().QueriesStarted == 0; {
		if time.Now().After(deadline) {
			t.Fatal("query never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := eng.Close(ctx); err != nil {
		t.Fatalf("Close did not drain the stalled scatter: %v", err)
	}
	o := <-done
	if o.err != nil {
		t.Fatalf("in-flight query must finish cleanly across Close: %v", o.err)
	}
	if o.res == nil || o.res.Table.NumRows() == 0 {
		t.Fatal("drained query returned no result")
	}
	if time.Since(start) > 4*time.Second {
		t.Error("Close took suspiciously long; drain may have raced")
	}
}

// ---- append routing ----

// TestShardAppendRoutingDifferential drives the adversarial ingest
// batches through a sharded engine and checks, after every append, that
// results stay bit-identical to a cold unsharded engine over the
// concatenated data — and that the deltas really routed to the owning
// shard.
func TestShardAppendRoutingDifferential(t *testing.T) {
	batches := ingestBatches()
	eng := sudaf.Open(sudaf.Options{Workers: 2, Shards: 3})
	if err := eng.Register(copyTR(batches[0])); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	routed := int64(0)
	for k := 1; k < len(batches); k++ {
		if _, err := eng.Append(ctx, "tr", copyTR(batches[k])); err != nil {
			t.Fatalf("append %d: %v", k, err)
		}
		if batches[k].NumRows() > 0 {
			routed++
		}
		cold := openTR(t, concatBatches(batches, k))
		for _, q := range ingestQueries {
			want, err := cold.Query(q.sql, sudaf.Share)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.Query(q.sql, sudaf.Share)
			if err != nil {
				t.Fatal(err)
			}
			if diff := sameResultMaps(resultMap(want, q.keys), resultMap(got, q.keys)); diff != "" {
				t.Fatalf("after batch %d, %q: %s", k, q.sql, diff)
			}
		}
	}
	if st := eng.ShardStats(); st.AppendsRouted != routed {
		t.Errorf("AppendsRouted = %d, want %d (stats %+v)", st.AppendsRouted, routed, st)
	}
}

// TestShardMaintenanceEqualsCold proves per-shard ⊕-maintenance: warm
// the worker caches, append a delta, drop the session cache (workers
// keep theirs), and re-query — the maintained worker partials must
// serve the query with ZERO rows rescanned, bit-identical to a cold
// engine over the concatenated data.
func TestShardMaintenanceEqualsCold(t *testing.T) {
	batches := ingestBatches()
	eng := sudaf.Open(sudaf.Options{Workers: 2, Shards: 4})
	if err := eng.Register(copyTR(batches[0])); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT g, sum(v), qm(v) FROM tr GROUP BY g"
	if _, err := eng.Query(sql, sudaf.Share); err != nil { // warm workers
		t.Fatal(err)
	}
	if _, err := eng.Append(context.Background(), "tr", copyTR(batches[1])); err != nil {
		t.Fatal(err)
	}
	if st := eng.ShardStats(); st.EntriesMaintained == 0 {
		t.Fatalf("owner shard maintained no entries: %+v", st)
	}

	eng.ClearCache() // session cache only; worker caches keep their partials
	got, err := eng.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if got.RowsScanned != 0 {
		t.Errorf("maintained shards must serve without rescanning, scanned %d rows", got.RowsScanned)
	}
	cold := openTR(t, concatBatches(batches, 1))
	want, err := cold.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if diff := sameResultMaps(resultMap(want, 1), resultMap(got, 1)); diff != "" {
		t.Fatalf("maintained partials diverge from cold recompute: %s", diff)
	}
}

// TestShardAppendRace runs appends racing sharded share-mode queries.
// Every query must observe a coherent snapshot: count(*) == sum(one)
// exactly, and the count lands on a batch boundary (never mid-append).
func TestShardAppendRace(t *testing.T) {
	const batchRows = 50
	base := trSchema()
	for i := 0; i < 1000; i++ {
		addRow(base, int64(i%5), "a", float64(i%7))
	}
	eng := sudaf.Open(sudaf.Options{Workers: 2, Shards: 3})
	if err := eng.Register(base); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 30; i++ {
			delta := trSchema()
			for j := 0; j < batchRows; j++ {
				addRow(delta, int64(rng.Intn(6)), "b", float64(rng.Intn(9)))
			}
			if _, err := eng.Append(ctx, "tr", delta); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
		close(stop)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := eng.Query("SELECT count(*), sum(one) FROM tr", sudaf.Share)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				cnt := res.Table.Cols[0].AsFloat(0)
				one := res.Table.Cols[1].AsFloat(0)
				if cnt != one {
					t.Errorf("reader %d: torn snapshot: count %v != sum(one) %v", r, cnt, one)
					return
				}
				if int(cnt-1000)%batchRows != 0 {
					t.Errorf("reader %d: count %v not on an append boundary", r, cnt)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// Final state identical to a cold engine over the same total.
	res, err := eng.Query("SELECT g, sum(v), count(*) FROM tr GROUP BY g", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.NumRows() == 0 {
		t.Fatal("no groups after race")
	}
}

// TestShardExplainProvenance warms a 4-shard engine, reboots one shard
// (clears its worker cache), and checks EXPLAIN shows per-shard cache
// provenance — three exact-hit shards, one miss — and that the
// follow-up query rescans only the rebooted shard's row range.
func TestShardExplainProvenance(t *testing.T) {
	eng := openShardTR(t, 4)
	const sql = "SELECT g, sum(v), qm(v) FROM tr GROUP BY g"

	cold, err := eng.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	total := cold.RowsScanned

	ex, err := eng.Explain(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Shards) != 4 {
		t.Fatalf("EXPLAIN shows %d shards, want 4: %+v", len(ex.Shards), ex.Shards)
	}
	rows := 0
	for i, es := range ex.Shards {
		rows += es.Rows
		for _, h := range es.Hits {
			if h != "exact" {
				t.Errorf("warm shard %d: hit %q, want exact", i, h)
			}
		}
	}
	if rows != total {
		t.Errorf("shard rows sum to %d, query scanned %d", rows, total)
	}

	const rebooted = 2
	eng.ClearShardWorker(rebooted)
	ex, err = eng.Explain(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	for i, es := range ex.Shards {
		want := "exact"
		if i == rebooted {
			want = "miss"
		}
		for _, h := range es.Hits {
			if h != want {
				t.Errorf("shard %d after reboot: hit %q, want %s", i, h, want)
			}
		}
	}

	// The re-query rescans only the rebooted shard's row range.
	eng.ClearCache()
	warm, err := eng.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if warm.RowsScanned != ex.Shards[rebooted].Rows {
		t.Errorf("rescan covered %d rows, want only rebooted shard's %d (of %d total)",
			warm.RowsScanned, ex.Shards[rebooted].Rows, total)
	}
	if diff := sameResultMaps(resultMap(cold, 1), resultMap(warm, 1)); diff != "" {
		t.Fatalf("partial rescan diverges: %s", diff)
	}
}

// copyTR deep-copies a tr batch so each engine registers its own table.
func copyTR(src *sudaf.Table) *sudaf.Table {
	out := trSchema()
	for i := 0; i < src.NumRows(); i++ {
		addRow(out, src.Col("g").I[i], src.Col("tag").StringAt(i), src.Col("v").F[i])
	}
	return out
}
