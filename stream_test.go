package sudaf_test

import (
	"context"
	"testing"

	"sudaf"
)

// TestQueryBatchesStreamsResult checks the batch cursor against the
// materialized result: same rows, same values, batch-size bounded views.
func TestQueryBatchesStreamsResult(t *testing.T) {
	eng := demoEngine(t)
	sql := "SELECT region, price FROM sales" // 10k projection rows → many batches
	full, err := eng.Query(sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := eng.QueryBatches(context.Background(), sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	rows, batches := 0, 0
	for cur.Next() {
		b := cur.Batch()
		if b.NumRows() == 0 || b.NumRows() > 1024 {
			t.Fatalf("batch %d has %d rows", batches, b.NumRows())
		}
		if len(b.Cols) != len(full.Table.Cols) {
			t.Fatalf("batch %d has %d columns, want %d", batches, len(b.Cols), len(full.Table.Cols))
		}
		for c := range b.Cols {
			for i := 0; i < b.NumRows(); i++ {
				if got, want := b.Cols[c].AsFloat(i), full.Table.Cols[c].AsFloat(rows+i); got != want {
					t.Fatalf("batch %d col %d row %d: %v, want %v", batches, c, i, got, want)
				}
			}
		}
		rows += b.NumRows()
		batches++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if rows != full.Table.NumRows() {
		t.Fatalf("streamed %d rows, result has %d", rows, full.Table.NumRows())
	}
	if want := (rows + 1023) / 1024; batches != want {
		t.Fatalf("%d batches for %d rows, want %d", batches, rows, want)
	}
	if cur.Result() == nil || cur.Result().RowsScanned == 0 {
		t.Error("cursor should expose the backing result's metadata")
	}
	// Close is idempotent and ends iteration.
	if err := cur.Close(); err != nil {
		t.Fatal(err)
	}
	if cur.Next() {
		t.Error("Next after Close should be false")
	}
}

// TestResultRowsIterator checks the row-level convenience built on the
// batch cursor, including iteration across batch boundaries.
func TestResultRowsIterator(t *testing.T) {
	eng := demoEngine(t)
	res, err := eng.Query("SELECT region, avg(price) m FROM sales GROUP BY region ORDER BY region", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	it := res.Rows()
	cols := it.Columns()
	if len(cols) != 2 || cols[1] != "m" {
		t.Fatalf("columns = %v", cols)
	}
	if it.NumCols() != 2 {
		t.Fatalf("NumCols = %d", it.NumCols())
	}
	n := 0
	for it.Next() {
		if got, want := it.Float(0), res.Table.Cols[0].AsFloat(n); got != want {
			t.Fatalf("row %d col 0: %v, want %v", n, got, want)
		}
		if got, want := it.Float(1), res.Table.Cols[1].AsFloat(n); got != want {
			t.Fatalf("row %d col 1: %v, want %v", n, got, want)
		}
		if it.String(0) == "" {
			t.Fatalf("row %d: empty string rendering", n)
		}
		n++
	}
	if n != res.Table.NumRows() {
		t.Fatalf("iterated %d rows, want %d", n, res.Table.NumRows())
	}
	// A custom batch size must not change what is seen, only how.
	small := res.Batches(3)
	total := 0
	for small.Next() {
		if small.Batch().NumRows() > 3 {
			t.Fatalf("batch of %d rows with size 3", small.Batch().NumRows())
		}
		total += small.Batch().NumRows()
	}
	if total != res.Table.NumRows() {
		t.Fatalf("size-3 cursor saw %d rows, want %d", total, res.Table.NumRows())
	}
}

// TestQueryBatchesStringColumns: dictionary columns must survive the
// zero-copy slicing with their dictionaries intact.
func TestQueryBatchesStringColumns(t *testing.T) {
	eng := sudaf.Open(sudaf.Options{Workers: 2})
	tbl := sudaf.NewTable("pets",
		sudaf.NewColumn("name", sudaf.String),
		sudaf.NewColumn("age", sudaf.Float))
	names := []string{"ada", "bo", "cy"}
	for i := 0; i < 2000; i++ {
		tbl.Col("name").AppendString(names[i%3])
		tbl.Col("age").AppendFloat(float64(i % 17))
	}
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	cur, err := eng.QueryBatches(context.Background(), "SELECT name, age FROM pets", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	row := 0
	for cur.Next() {
		b := cur.Batch()
		for i := 0; i < b.NumRows(); i++ {
			if got, want := b.Cols[0].StringAt(i), names[(row+i)%3]; got != want {
				t.Fatalf("row %d: %q, want %q", row+i, got, want)
			}
		}
		row += b.NumRows()
	}
	if row != 2000 {
		t.Fatalf("saw %d rows", row)
	}
}
