package sudaf_test

// Ablation benchmarks for the design decisions DESIGN.md calls out:
//
//   - symbolic-space lookup vs the direct Theorem 4.1 decision procedure
//     (the point of Section 5: avoid expression transformations at
//     runtime);
//   - compiled state loops vs the interpreted accumulator (the rewriting
//     benefit isolated from joins and grouping);
//   - worker-count scaling of partitioned partial aggregation (the
//     "Spark mode" axis);
//   - coefficient hoisting: state dedup with and without equivalent
//     spellings of the same aggregate.

import (
	"testing"

	"sudaf"
	"sudaf/internal/canonical"
	"sudaf/internal/data"
	"sudaf/internal/expr"
	"sudaf/internal/scalar"
	"sudaf/internal/sharing"
	"sudaf/internal/symbolic"
)

// ---- sharing decision: direct vs precomputed symbolic space ----

func shareOperands() (canonical.State, canonical.State) {
	s1 := canonical.State{Op: canonical.OpSum,
		F: scalar.NewChain(scalar.LogP(scalar.E)), Base: &expr.Var{Name: "x"}}
	s2 := canonical.State{Op: canonical.OpProd,
		F: scalar.IdentityChain(), Base: &expr.Var{Name: "x"}}
	return s1, s2
}

func BenchmarkAblation_ShareDecision_Direct(b *testing.B) {
	s1, s2 := shareOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sharing.Share(s1, s2, true); !ok {
			b.Fatal("share lost")
		}
	}
}

func BenchmarkAblation_ShareDecision_SymbolicLookup(b *testing.B) {
	sp := symbolic.NewSpace(2)
	s1, s2 := shareOperands()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sp.ShareVia(s1.Op, s1.F, s2.Op, s2.F); !ok {
			b.Fatal("share lost")
		}
	}
}

// ---- interpreted accumulator vs compiled state loops, no joins ----

func BenchmarkAblation_UDAFInterpreted(b *testing.B) {
	eng := benchEngine(b, false)
	benchQuery(b, eng, "SELECT cm(internet_traffic) FROM milan_data", sudaf.Baseline)
}

func BenchmarkAblation_UDAFCompiledStates(b *testing.B) {
	eng := benchEngine(b, false)
	benchQuery(b, eng, "SELECT cm(internet_traffic) FROM milan_data", sudaf.Rewrite)
}

// ---- parallel scaling ----

func benchWorkers(b *testing.B, workers int) {
	eng := sudaf.Open(sudaf.Options{Workers: workers})
	if err := eng.Register(data.Milan(1_000_000, 10_000, 8)); err != nil {
		b.Fatal(err)
	}
	benchQuery(b, eng,
		"SELECT square_id, stddev(internet_traffic) FROM milan_data GROUP BY square_id",
		sudaf.Rewrite)
}

func BenchmarkAblation_Workers1(b *testing.B) { benchWorkers(b, 1) }
func BenchmarkAblation_Workers2(b *testing.B) { benchWorkers(b, 2) }
func BenchmarkAblation_Workers4(b *testing.B) { benchWorkers(b, 4) }
func BenchmarkAblation_Workers8(b *testing.B) { benchWorkers(b, 8) }

// ---- hoisting: equivalent spellings share one state ----

func BenchmarkAblation_HoistedSpellings(b *testing.B) {
	// Three spellings of the same second moment; hoisting collapses them
	// to a single Σx² state, so the query runs one loop, not three.
	eng := benchEngine(b, false)
	if err := eng.DefineUDAF("m2a", []string{"x"}, "sum(x^2)/count()"); err != nil {
		b.Fatal(err)
	}
	if err := eng.DefineUDAF("m2b", []string{"x"}, "sum(4*x^2)/(4*count())"); err != nil {
		b.Fatal(err)
	}
	if err := eng.DefineUDAF("m2c", []string{"x"}, "sum((2*x)^2)/(4*count())"); err != nil {
		b.Fatal(err)
	}
	benchQuery(b, eng,
		"SELECT m2a(internet_traffic), m2b(internet_traffic), m2c(internet_traffic) FROM milan_data",
		sudaf.Rewrite)
}

// ---- canonicalization of a full workload's UDAF library ----

func BenchmarkAblation_SpaceL1VsL2(b *testing.B) {
	b.Run("l=1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			symbolic.NewSpace(1)
		}
	})
	b.Run("l=2", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			symbolic.NewSpace(2)
		}
	})
}
