module sudaf

go 1.22
