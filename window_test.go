package sudaf_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"sudaf"
	"sudaf/internal/faultinject"
)

// windowEngine builds an engine over adversarial stream data: NaN, ±Inf,
// signed zeros, fractional, huge and tiny values, plus an int and a
// string column for emit-row passthrough checks.
func windowEngine(t *testing.T, n int) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	if err := eng.Register(windowTable("ticks", 0, n, 7)); err != nil {
		t.Fatal(err)
	}
	return eng
}

// windowTable builds rows [lo, n) of the deterministic adversarial
// stream (same seed → same rows, so deltas slice the same sequence).
func windowTable(name string, lo, n int, seed int64) *sudaf.Table {
	tbl := sudaf.NewTable(name,
		sudaf.NewColumn("v", sudaf.Float),
		sudaf.NewColumn("k", sudaf.Int),
		sudaf.NewColumn("tag", sudaf.String))
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"buy", "sell", "hold"}
	for i := 0; i < n; i++ {
		var v float64
		switch rng.Intn(8) {
		case 0:
			v = math.NaN()
		case 1:
			v = math.Inf(1)
		case 2:
			v = math.Inf(-1)
		case 3:
			v = math.Copysign(0, -1)
		case 4:
			v = rng.NormFloat64() * 1e17
		case 5:
			v = rng.NormFloat64() * 1e-17
		default:
			v = rng.NormFloat64() * 50
		}
		if i < lo {
			continue // keep the rng sequence aligned across slices
		}
		tbl.Col("v").AppendFloat(v)
		tbl.Col("k").AppendInt(int64(i))
		tbl.Col("tag").AppendString(tags[i%3])
	}
	return tbl
}

var windowModes = []struct {
	name string
	mode sudaf.Mode
}{
	{"baseline", sudaf.Baseline},
	{"rewrite", sudaf.Rewrite},
	{"share", sudaf.Share},
}

const windowAggs = "sum(v), avg(v), min(v), max(v), qm(v)"

// bitsEqual is the repo's bit-identity predicate (NaN ≡ NaN): windowed
// emissions must match a cold recompute down to zero signs and exact
// finite bits. NaN payloads are exempt — which payload survives a
// NaN ⊕ NaN merge depends on hardware operand order, which the
// compiler may legally swap for commutative ops, so no two code paths
// can pin it.
func bitsEqual(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestWindowedVsColdRecompute is the windowed-vs-recompute differential
// battery: every emitted window of a one-shot windowed query must be
// bit-identical to a cold full query over exactly the window's row
// range, registered as its own table — across sliding and tumbling
// frames, all three modes, on NaN/±Inf adversarial data.
func TestWindowedVsColdRecompute(t *testing.T) {
	const n = 57
	eng := windowEngine(t, n)

	specs := []struct {
		over   string
		frames [][2]int
	}{
		{"ROWS 6 PRECEDING", slidingFrames(n, 6)},
		{"ROWS 10 TUMBLING", tumblingFrames(n, 10)},
	}
	// Register each distinct frame's rows once as its own cold table.
	coldName := map[[2]int]string{}
	for _, spec := range specs {
		for _, fr := range spec.frames {
			if _, ok := coldName[fr]; ok {
				continue
			}
			name := fmt.Sprintf("cold_%d_%d", fr[0], fr[1])
			if err := eng.Register(windowTable(name, fr[0], fr[1], 7)); err != nil {
				t.Fatal(err)
			}
			coldName[fr] = name
		}
	}

	for _, spec := range specs {
		for _, m := range windowModes {
			t.Run(spec.over+"/"+m.name, func(t *testing.T) {
				// OVER attaches to one call; its frame governs the
				// whole statement.
				sql := fmt.Sprintf("SELECT sum(v) OVER (%s), avg(v), min(v), max(v), qm(v) FROM ticks", spec.over)
				res, err := eng.Query(sql, m.mode)
				if err != nil {
					t.Fatal(err)
				}
				if res.Table.NumRows() != len(spec.frames) {
					t.Fatalf("emitted %d windows, want %d", res.Table.NumRows(), len(spec.frames))
				}
				for e, fr := range spec.frames {
					cold, err := eng.Query(
						"SELECT "+windowAggs+" FROM "+coldName[fr], m.mode)
					if err != nil {
						t.Fatal(err)
					}
					for c := range res.Table.Cols {
						got := res.Table.Cols[c].F[e]
						want := cold.Table.Cols[c].F[0]
						if !bitsEqual(got, want) {
							t.Fatalf("window %d rows [%d,%d) col %s: %x (%v) != cold %x (%v)",
								e, fr[0], fr[1], res.Table.Cols[c].Name,
								math.Float64bits(got), got, math.Float64bits(want), want)
						}
					}
				}
			})
		}
	}
}

func slidingFrames(n, prec int) [][2]int {
	var out [][2]int
	for r := 0; r < n; r++ {
		lo := r - prec
		if lo < 0 {
			lo = 0
		}
		out = append(out, [2]int{lo, r + 1})
	}
	return out
}

func tumblingFrames(n, b int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += b {
		hi := lo + b
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

// TestWindowMultiMorselFrames pins the chunked refold against frames
// larger than one morsel (65536 rows): the fold's chunk boundaries must
// reproduce the cold scan's morsel merge order bit-for-bit.
func TestWindowMultiMorselFrames(t *testing.T) {
	const n = 140_000
	eng := windowEngine(t, n)
	frames := tumblingFrames(n, 100_000)
	for _, fr := range frames {
		name := fmt.Sprintf("cold_%d_%d", fr[0], fr[1])
		if err := eng.Register(windowTable(name, fr[0], fr[1], 7)); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range windowModes {
		res, err := eng.Query("SELECT sum(v) OVER (ROWS 100000 TUMBLING), avg(v), qm(v) FROM ticks", m.mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.Table.NumRows() != len(frames) {
			t.Fatalf("%s: emitted %d windows, want %d", m.name, res.Table.NumRows(), len(frames))
		}
		for e, fr := range frames {
			cold, err := eng.Query(fmt.Sprintf("SELECT sum(v), avg(v), qm(v) FROM cold_%d_%d", fr[0], fr[1]), m.mode)
			if err != nil {
				t.Fatal(err)
			}
			for c := range res.Table.Cols {
				if !bitsEqual(res.Table.Cols[c].F[e], cold.Table.Cols[c].F[0]) {
					t.Fatalf("%s window %d col %d: %v != cold %v",
						m.name, e, c, res.Table.Cols[c].F[e], cold.Table.Cols[c].F[0])
				}
			}
		}
	}
}

// TestWindowOutputShapes checks non-aggregate projections: bare columns
// read at each frame's emit row with their type preserved, and mixed
// expressions over aggregates and columns.
func TestWindowOutputShapes(t *testing.T) {
	eng := windowEngine(t, 20)
	res, err := eng.Query(
		"SELECT tag, k, sum(v) OVER (ROWS 3 PRECEDING) AS s, k + 1000", sudaf.Rewrite)
	if err == nil {
		t.Fatal("missing FROM should fail")
	}
	res, err = eng.Query(
		"SELECT tag, k, sum(v) OVER (ROWS 3 PRECEDING) AS s, k + 1000 FROM ticks", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Table.NumRows(); got != 20 {
		t.Fatalf("rows = %d, want 20", got)
	}
	tags := []string{"buy", "sell", "hold"}
	for r := 0; r < 20; r++ {
		if got := res.Table.Col("tag").StringAt(r); got != tags[r%3] {
			t.Fatalf("row %d tag = %q, want %q", r, got, tags[r%3])
		}
		if got := res.Table.Col("k").AsInt(r); got != int64(r) {
			t.Fatalf("row %d k = %d, want %d", r, got, r)
		}
		if got := res.Table.Cols[3].AsFloat(r); got != float64(r+1000) {
			t.Fatalf("row %d k+1000 = %v", r, got)
		}
	}
	if res.Table.Col("tag").Kind != sudaf.String || res.Table.Col("k").Kind != sudaf.Int {
		t.Fatal("passthrough columns must keep their storage kind")
	}
}

// TestWindowShareCaching pins Theorem 4.1 sharing over window partials:
// a repeated share-mode windowed query is a full cache hit (no rows
// scanned, bit-identical output), and a *different* UDAF over the same
// frame reuses the cached per-emission state vectors.
func TestWindowShareCaching(t *testing.T) {
	eng := windowEngine(t, 40)
	const sql = "SELECT qm(v) OVER (ROWS 4 PRECEDING) FROM ticks"
	first, err := eng.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if first.RowsScanned == 0 || first.FullCacheHit {
		t.Fatalf("cold run must scan: scanned=%d fullHit=%v", first.RowsScanned, first.FullCacheHit)
	}
	second, err := eng.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if !second.FullCacheHit || second.RowsScanned != 0 {
		t.Fatalf("warm run: fullHit=%v scanned=%d, want true/0", second.FullCacheHit, second.RowsScanned)
	}
	for r := range first.Table.Cols[0].F {
		if !bitsEqual(first.Table.Cols[0].F[r], second.Table.Cols[0].F[r]) {
			t.Fatalf("warm row %d differs from cold", r)
		}
	}

	// msq needs exactly qm's states (sum(v^2), count) with a different
	// terminating function: served entirely from the window cache.
	if err := eng.DefineUDAF("msq", []string{"x"}, "sum(x^2)/count()"); err != nil {
		t.Fatal(err)
	}
	third, err := eng.Query("SELECT msq(v) OVER (ROWS 4 PRECEDING) FROM ticks", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if !third.FullCacheHit || third.RowsScanned != 0 {
		t.Fatalf("cross-UDAF window reuse: fullHit=%v scanned=%d", third.FullCacheHit, third.RowsScanned)
	}
	if third.Stats.CacheExactHits == 0 {
		t.Fatalf("expected exact state hits, stats=%+v", third.Stats)
	}
	// A different frame must NOT hit the other frame's entry.
	other, err := eng.Query("SELECT qm(v) OVER (ROWS 5 PRECEDING) FROM ticks", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if other.FullCacheHit {
		t.Fatal("different frame shape must not reuse window partials")
	}

	// An append invalidates window entries (frames shift): the next run
	// must recompute, not serve stale vectors.
	if _, err := eng.Append(context.Background(), "ticks", windowTable("ticks", 0, 3, 99)); err != nil {
		t.Fatal(err)
	}
	after, err := eng.Query(sql, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if after.FullCacheHit || after.Table.NumRows() != 43 {
		t.Fatalf("post-append: fullHit=%v rows=%d, want false/43", after.FullCacheHit, after.Table.NumRows())
	}
}

// TestWindowScopeErrors pins the v1 windowed-query surface's error
// messages.
func TestWindowScopeErrors(t *testing.T) {
	eng := windowEngine(t, 10)
	cases := []struct {
		sql, want string
	}{
		{"SELECT sum(v) OVER (EPOCHS 2 PRECEDING) FROM ticks", "EPOCHS windows require"},
		{"SELECT sum(v) OVER (ROWS 2 PRECEDING) FROM ticks WHERE v > 0", "do not support WHERE"},
		{"SELECT sum(v) OVER (ROWS 2 PRECEDING) FROM ticks GROUP BY tag", "GROUP BY"},
		{"SELECT sum(v) OVER (ROWS 2 PRECEDING) FROM ticks ORDER BY v", "ORDER BY"},
		{"SELECT sqrt(v) OVER (ROWS 2 PRECEDING) FROM ticks", "at least one aggregate"},
		{"SELECT sum(v) FROM (SELECT v OVER (ROWS 2 PRECEDING) FROM ticks) s", ""},
		{"SELECT sum(v) OVER (ROWS 2 PRECEDING), avg(v) OVER (ROWS 3 PRECEDING) FROM ticks", "conflicting OVER"},
	}
	for _, c := range cases {
		_, err := eng.Query(c.sql, sudaf.Rewrite)
		if err == nil {
			t.Fatalf("%s: expected error", c.sql)
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%s: error %q does not contain %q", c.sql, err, c.want)
		}
	}
}

// collectEmissions drains n results with a timeout.
func collectEmissions(t *testing.T, sub *sudaf.Subscription, n int) []*sudaf.WindowResult {
	t.Helper()
	var out []*sudaf.WindowResult
	timeout := time.After(20 * time.Second)
	for len(out) < n {
		select {
		case wr, ok := <-sub.Results():
			if !ok {
				t.Fatalf("stream closed early after %d/%d results: %v", len(out), n, sub.Err())
			}
			out = append(out, wr)
		case <-timeout:
			t.Fatalf("timed out after %d/%d results", len(out), n)
		}
	}
	return out
}

// TestSubscribeSlidingDifferential: a sliding subscription fed by
// appends must emit, across all batches, exactly the rows a one-shot
// windowed query over the final table produces — bit-identical, in
// order, with contiguous Seq.
func TestSubscribeSlidingDifferential(t *testing.T) {
	for _, m := range windowModes {
		t.Run(m.name, func(t *testing.T) {
			eng := sudaf.Open(sudaf.Options{Workers: 4})
			if err := eng.Register(windowTable("s", 0, 5, 7)); err != nil {
				t.Fatal(err)
			}
			sub, err := eng.Subscribe(context.Background(),
				"SELECT sum(v) OVER (ROWS 3 PRECEDING), qm(v), k FROM s", m.mode)
			if err != nil {
				t.Fatal(err)
			}
			defer sub.Close()

			// Deltas continue the same deterministic stream.
			total := 5
			batches := []int{1, 4, 2, 7, 3}
			for _, k := range batches {
				if _, err := eng.Append(context.Background(), "s",
					windowTable("s", total, total+k, 7)); err != nil {
					t.Fatal(err)
				}
				total += k
			}

			// 1 snapshot result + one per append.
			results := collectEmissions(t, sub, 1+len(batches))
			oneShot, err := eng.Query("SELECT sum(v) OVER (ROWS 3 PRECEDING), qm(v), k FROM s", m.mode)
			if err != nil {
				t.Fatal(err)
			}
			row := 0
			for i, wr := range results {
				if wr.Seq != int64(i+1) {
					t.Fatalf("result %d has Seq %d (gap)", i, wr.Seq)
				}
				if wr.FirstRow != row {
					t.Fatalf("result %d FirstRow=%d, want %d (FIFO/exactly-once broken)", i, wr.FirstRow, row)
				}
				for r := 0; r < wr.Table.NumRows(); r++ {
					for c := 0; c < 2; c++ {
						if !bitsEqual(wr.Table.Cols[c].F[r], oneShot.Table.Cols[c].F[row]) {
							t.Fatalf("emission row %d col %d: %v != one-shot %v",
								row, c, wr.Table.Cols[c].F[r], oneShot.Table.Cols[c].F[row])
						}
					}
					if wr.Table.Col("k").AsInt(r) != int64(row) {
						t.Fatalf("emission row %d: k=%d", row, wr.Table.Col("k").AsInt(r))
					}
					row++
				}
			}
			if row != total {
				t.Fatalf("emitted %d rows total, want %d (exactly-once broken)", row, total)
			}
		})
	}
}

// TestSubscribeTumbling: tumbling subscriptions emit one result per
// completed bucket — including buckets whose boundary lands exactly on
// an append boundary — and never the growing partial bucket.
func TestSubscribeTumbling(t *testing.T) {
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	if err := eng.Register(windowTable("s", 0, 4, 7)); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(),
		"SELECT sum(v) OVER (ROWS 4 TUMBLING), avg(v) FROM s", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	// 4 seed rows (bucket 1 completes exactly at the snapshot), then
	// appends of 4 (boundary-exact), 2+2 (bucket split across appends),
	// 5 (bucket + 1 leftover row that must stay unemitted).
	total := 4
	for _, k := range []int{4, 2, 2, 5} {
		if _, err := eng.Append(context.Background(), "s", windowTable("s", total, total+k, 7)); err != nil {
			t.Fatal(err)
		}
		total += k
	}
	results := collectEmissions(t, sub, 4) // 17 rows → 4 complete buckets
	oneShot, err := eng.Query("SELECT sum(v) OVER (ROWS 4 TUMBLING), avg(v) FROM s", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	for i, wr := range results {
		if wr.Seq != int64(i+1) || wr.Table.NumRows() != 1 {
			t.Fatalf("bucket %d: Seq=%d rows=%d", i, wr.Seq, wr.Table.NumRows())
		}
		if wr.FirstRow != i*4 || wr.LastRow != i*4+3 {
			t.Fatalf("bucket %d covers [%d,%d], want [%d,%d]", i, wr.FirstRow, wr.LastRow, i*4, i*4+3)
		}
		for c := 0; c < 2; c++ {
			if !bitsEqual(wr.Table.Cols[c].F[0], oneShot.Table.Cols[c].F[i]) {
				t.Fatalf("bucket %d col %d: %v != one-shot %v", i, c, wr.Table.Cols[c].F[0], oneShot.Table.Cols[c].F[i])
			}
		}
	}
	select {
	case wr := <-sub.Results():
		t.Fatalf("partial bucket must not emit, got Seq %d", wr.Seq)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestSubscribeEpochs: EPOCHS frames tick per append batch, whatever
// its row count; sliding frames cover the last n+1 batches' rows.
func TestSubscribeEpochs(t *testing.T) {
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	if err := eng.Register(windowTable("s", 0, 3, 7)); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(),
		"SELECT sum(v) OVER (EPOCHS 1 PRECEDING), qm(v) FROM s", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	bounds := [][2]int{{0, 3}} // snapshot = tick 1
	total := 3
	for _, k := range []int{2, 5, 1} {
		if _, err := eng.Append(context.Background(), "s", windowTable("s", total, total+k, 7)); err != nil {
			t.Fatal(err)
		}
		bounds = append(bounds, [2]int{total, total + k})
		total += k
	}
	results := collectEmissions(t, sub, len(bounds))
	for i, wr := range results {
		lo := bounds[i][0]
		if i > 0 {
			lo = bounds[i-1][0] // last 2 ticks
		}
		hi := bounds[i][1]
		if wr.FirstRow != lo || wr.LastRow != hi-1 || wr.Table.NumRows() != 1 {
			t.Fatalf("tick %d: [%d,%d] rows=%d, want [%d,%d]", i, wr.FirstRow, wr.LastRow, wr.Table.NumRows(), lo, hi-1)
		}
		// Differential: cold query over exactly the window's rows.
		name := fmt.Sprintf("epoch_cold_%d", i)
		if err := eng.Register(windowTable(name, lo, hi, 7)); err != nil {
			t.Fatal(err)
		}
		cold, err := eng.Query("SELECT sum(v), qm(v) FROM "+name, sudaf.Rewrite)
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 2; c++ {
			if !bitsEqual(wr.Table.Cols[c].F[0], cold.Table.Cols[c].F[0]) {
				t.Fatalf("tick %d col %d: %v != cold %v", i, c, wr.Table.Cols[c].F[0], cold.Table.Cols[c].F[0])
			}
		}
	}
}

// TestSubscribeBoundaryAppendRace is the window-boundary race pin:
// appends landing exactly on bucket boundaries while the stream drains
// slowly must produce no torn windows, no duplicates, no gaps — Seq
// contiguous, buckets covering [0,total) exactly once, every value
// bit-identical to the one-shot query.
func TestSubscribeBoundaryAppendRace(t *testing.T) {
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	if err := eng.Register(windowTable("s", 0, 2, 7)); err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Subscribe(context.Background(),
		"SELECT sum(v) OVER (ROWS 2 TUMBLING) FROM s", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	const appends = 60
	totalCh := make(chan int)
	go func() {
		total := 2
		for i := 0; i < appends; i++ {
			k := 1 + i%3 // 1, 2 (boundary-exact), 3 — drifting across boundaries
			if _, err := eng.Append(context.Background(), "s", windowTable("s", total, total+k, 7)); err != nil {
				t.Error(err)
				break
			}
			total += k
		}
		totalCh <- total
	}()

	var results []*sudaf.WindowResult
	var total int
	timeout := time.After(30 * time.Second)
	done := false
	for !done {
		select {
		case wr, ok := <-sub.Results():
			if !ok {
				t.Fatalf("stream closed early: %v", sub.Err())
			}
			results = append(results, wr)
			time.Sleep(time.Millisecond) // slow consumer: force queueing
			if total > 0 && len(results) == total/2 {
				done = true
			}
		case total = <-totalCh:
			totalCh = nil
			if len(results) >= total/2 {
				done = true
			}
		case <-timeout:
			t.Fatalf("timed out with %d results", len(results))
		}
	}
	if totalCh != nil {
		total = <-totalCh
	}
	oneShot, err := eng.Query("SELECT sum(v) OVER (ROWS 2 TUMBLING) FROM s", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != total/2 {
		t.Fatalf("got %d buckets, want %d", len(results), total/2)
	}
	for i, wr := range results {
		if wr.Seq != int64(i+1) {
			t.Fatalf("bucket %d: Seq=%d (gap or duplicate)", i, wr.Seq)
		}
		if wr.FirstRow != i*2 || wr.LastRow != i*2+1 {
			t.Fatalf("bucket %d covers [%d,%d] (torn window)", i, wr.FirstRow, wr.LastRow)
		}
		if !bitsEqual(wr.Table.Cols[0].F[0], oneShot.Table.Cols[0].F[i]) {
			t.Fatalf("bucket %d: %v != one-shot %v", i, wr.Table.Cols[0].F[0], oneShot.Table.Cols[0].F[i])
		}
	}
}

// TestSubscribeLifecycle covers the close paths: plain Close ends the
// stream with nil Err; engine Close ends every subscription; Subscribe
// after Close fails fast; EPOCHS one-shot stays rejected while the same
// statement subscribes fine.
func TestSubscribeLifecycle(t *testing.T) {
	eng := sudaf.Open(sudaf.Options{Workers: 2})
	if err := eng.Register(windowTable("s", 0, 6, 7)); err != nil {
		t.Fatal(err)
	}
	const sql = "SELECT sum(v) OVER (EPOCHS 2 TUMBLING) FROM s"
	if _, err := eng.Query(sql, sudaf.Rewrite); err == nil {
		t.Fatal("EPOCHS one-shot query must be rejected")
	}
	sub, err := eng.Subscribe(context.Background(), sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	sub.Close()
	sub.Close() // idempotent
	if _, ok := <-sub.Results(); ok {
		t.Fatal("Results must be closed after Close")
	}
	if sub.Err() != nil {
		t.Fatalf("plain Close must leave Err nil, got %v", sub.Err())
	}

	sub2, err := eng.Subscribe(context.Background(),
		"SELECT sum(v) OVER (ROWS 2 PRECEDING) FROM s", sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	got := collectEmissions(t, sub2, 1)
	if got[0].Table.NumRows() != 6 {
		t.Fatalf("snapshot emitted %d rows, want 6", got[0].Table.NumRows())
	}
	if err := eng.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub2.Results(); ok {
		t.Fatal("engine Close must close subscription streams")
	}
	if _, err := eng.Subscribe(context.Background(),
		"SELECT sum(v) OVER (ROWS 2 PRECEDING) FROM s", sudaf.Rewrite); err == nil {
		t.Fatal("Subscribe after Close must fail")
	}
}

// TestWindowChaos arms the window fault points: a one-shot windowed
// query fails cleanly, a subscription surfaces the fault via Err after
// closing its stream, and the engine stays healthy afterwards.
func TestWindowChaos(t *testing.T) {
	defer faultinject.Reset()
	eng := windowEngine(t, 30)
	const sql = "SELECT sum(v) OVER (ROWS 3 PRECEDING) FROM ticks"

	faultinject.Arm(faultinject.PointWindowEvict, faultinject.Spec{Kind: faultinject.KindError})
	if _, err := eng.Query(sql, sudaf.Rewrite); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed window.evict: err=%v", err)
	}
	faultinject.Reset()

	faultinject.Arm(faultinject.PointWindowEmit, faultinject.Spec{Kind: faultinject.KindError})
	if _, err := eng.Query(sql, sudaf.Baseline); err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed window.emit (baseline): err=%v", err)
	}
	sub, err := eng.Subscribe(context.Background(), sql, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, ok := <-sub.Results():
			if !ok {
				if sub.Err() == nil || !errors.Is(sub.Err(), faultinject.ErrInjected) {
					t.Fatalf("subscription Err=%v, want injected fault", sub.Err())
				}
				goto healthy
			}
		case <-deadline:
			t.Fatal("faulted subscription never closed its stream")
		}
	}
healthy:
	sub.Close()
	faultinject.Reset()
	if _, err := eng.Query(sql, sudaf.Rewrite); err != nil {
		t.Fatalf("engine unhealthy after window chaos: %v", err)
	}
}
