package sudaf

import "sudaf/internal/errs"

// Sentinel errors returned (wrapped) by Query, QueryContext and
// QueryBatches. Match them with errors.Is; the wrapped message carries
// the specifics (which table, which aggregate, which group):
//
//	_, err := eng.Query(`SELECT qm(price) FROM nosuch`, sudaf.Rewrite)
//	if errors.Is(err, sudaf.ErrUnknownTable) { ... }
var (
	// ErrUnknownTable reports a FROM reference to a table that was never
	// Register-ed.
	ErrUnknownTable = errs.ErrUnknownTable
	// ErrUnknownUDAF reports an aggregate call that is neither a SQL
	// built-in nor a registered UDAF.
	ErrUnknownUDAF = errs.ErrUnknownUDAF
	// ErrParse reports a SQL syntax error.
	ErrParse = errs.ErrParse
	// ErrNumericFault reports a NaN/±Inf aggregate output rejected under
	// NumericStrict. Under NumericPermissive the value is emitted and
	// counted in Result.NumericFaults instead.
	ErrNumericFault = errs.ErrNumericFault
	// ErrCanceled reports a query stopped by context cancellation, a
	// deadline, or the engine's QueryTimeout. The originating context
	// error stays wrapped, so errors.Is(err, context.Canceled) and
	// errors.Is(err, context.DeadlineExceeded) keep working too.
	ErrCanceled = errs.ErrCanceled
	// ErrEngineClosed reports work rejected because Engine.Close was
	// called: new queries, appends and materializations fail with it, and
	// callers queued for an admission slot when the close began resolve
	// with it instead of hanging. Work admitted before the close runs to
	// completion and never sees this error.
	ErrEngineClosed = errs.ErrEngineClosed
	// ErrOverloaded reports a request shed by the network serving layer
	// (internal/server): the bounded admission queue, a per-session
	// concurrency cap, or the session table was full. Shedding happens
	// before any execution, so overloaded requests are always safe to
	// retry after backoff.
	ErrOverloaded = errs.ErrOverloaded
	// ErrShard reports a scatter-gather failure on a sharded engine
	// (Options.Shards > 1): a shard worker's partial scan failed or
	// panicked, or the coordinator's ⊕-merge did. The query surfaces
	// exactly one such error and no partial results; the underlying
	// cause stays wrapped (a cancelled shard also matches ErrCanceled).
	ErrShard = errs.ErrShard
)
