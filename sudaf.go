// Package sudaf is a Go implementation of SUDAF — "Sharing Computations
// for User-Defined Aggregate Functions" (Zhang & Toumani, EDBT 2020).
//
// SUDAF lets users define aggregate functions declaratively, as
// mathematical expressions over sum/prod/count/min/max and scalar
// primitives, instead of hand-coding initialize/update/merge/evaluate
// routines:
//
//	eng := sudaf.Open(sudaf.Options{})
//	eng.DefineUDAF("qm", []string{"x"}, "sqrt(sum(x^2)/count())")
//	res, _ := eng.Query("SELECT region, qm(price) FROM sales GROUP BY region", sudaf.Share)
//
// Each UDAF is canonicalized into a well-formed aggregation (F, ⊕, T):
// per-tuple scalar translations, commutative/associative merges, and a
// terminating scalar function. The engine then:
//
//   - rewrites UDAFs into built-in aggregation-state loops (fast even
//     when the baseline would interpret a hardcoded UDAF per tuple);
//   - caches aggregation states per data fingerprint and reuses them
//     across *different* UDAFs whenever a scalar rewriting r with
//     s' = r∘s exists (Theorem 4.1: decided via precomputed symbolic
//     sharing spaces, verified numerically);
//   - rolls up materialized state views to answer coarser-grained
//     queries (classic aggregate-view rewriting over sum/count states).
//
// The bundled engine is a columnar in-memory SQL executor with hash
// joins and partitioned parallel aggregation; Baseline mode reproduces
// the hardcoded-UDAF systems the paper compares against.
//
// # Observability
//
// Engine.Explain reports how a statement would run — canonical forms,
// the rewritten SQL, and in Share mode the cache provenance of every
// aggregation state (exact hit, Theorem 4.1 sharing with the scalar
// rewriting and conditions, sign-split reconstruction, or why it
// missed) — without executing it. Options.TraceRate samples queries
// into per-stage span trees on Result.Trace, and Engine.ServeMetrics
// exports engine/cache/ingestion counters and latency histograms over
// Prometheus text, expvar and pprof. See docs/OBSERVABILITY.md for the
// full reference.
package sudaf

import (
	"context"
	"sort"
	"time"

	"sudaf/internal/cache"
	"sudaf/internal/canonical"
	"sudaf/internal/core"
	"sudaf/internal/obs"
	"sudaf/internal/storage"
	"sudaf/internal/symbolic"
)

// Mode selects how aggregates execute; see the package comment.
type Mode = core.Mode

// Execution modes.
const (
	// Baseline models PostgreSQL/Spark SQL: built-ins run native, UDAFs
	// run as hardcoded per-tuple interpreted accumulators.
	Baseline = core.ModeBaseline
	// Rewrite is SUDAF without sharing: aggregates decompose into
	// compiled aggregation-state loops (the paper's RQ1/RQ2 rewriting).
	Rewrite = core.ModeRewrite
	// Share adds the dynamic aggregation-state cache with Theorem 4.1
	// cross-UDAF sharing.
	Share = core.ModeShare
)

// Options configures an engine. Beyond parallelism and cache sizing it
// carries the failure-model knobs: QueryTimeout bounds every query, and
// Numeric selects strict vs permissive handling of NaN/±Inf aggregate
// outputs (see NumericPolicy).
type Options = core.Options

// NumericPolicy selects how NaN/±Inf aggregate outputs are handled.
type NumericPolicy = core.NumericPolicy

// Numeric policies.
const (
	// NumericPermissive (the default) emits NaN/±Inf like SQL emits NULL,
	// counts them in Result.NumericFaults and notes them in Result.Events.
	NumericPermissive = core.NumericPermissive
	// NumericStrict fails the query with an error naming the aggregate and
	// group on the first numeric domain fault.
	NumericStrict = core.NumericStrict
)

// Result is a query result; Table holds the output columns. Batches(n)
// and Rows() iterate it incrementally (see BatchCursor, RowIter).
type Result = core.Result

// Request is one query submission — the statement plus the mode to run
// it in. Every query entry point reduces to Requests flowing through
// the engine's single internal submission path; QueryBatch takes a
// slice of them.
type Request = core.Request

// BatchCursor iterates a query result in fixed-size column batches; see
// Engine.QueryBatches.
type BatchCursor = core.BatchCursor

// RowIter iterates a query result row by row; see Result.Rows.
type RowIter = core.RowIter

// CacheStats reports cache activity (exact, shared and sign-split hits).
type CacheStats = cache.Stats

// QueryStats is the per-query observability record on Result.Stats:
// wall time, admission queue wait, rows scanned, cache hit breakdown and
// the batch kernels used.
type QueryStats = core.QueryStats

// EngineStats are engine-lifetime aggregate counters (queries started /
// completed / failed / queued, total rows scanned, cumulative query time
// and admission queue wait), maintained atomically across concurrent
// queries.
type EngineStats = core.EngineStats

// IngestStats are engine-lifetime ingestion counters: append batches and
// rows ingested, cache entries delta-maintained vs invalidated, and
// materialized views delta-folded vs dropped.
type IngestStats = core.IngestStats

// ShardStats are engine-lifetime scatter-gather counters on a sharded
// engine (Options.Shards > 1): distributed queries vs single-engine
// fallbacks, per-shard worker scans and cache hits, rows rescanned by
// partial recomputations, and appends routed to their owning shard.
// All zero on an unsharded engine.
type ShardStats = core.ShardStats

// Explain is the structured result of Engine.Explain: the canonical
// decomposition of a query's aggregates and, in Share mode, the sharing
// provenance of every aggregation state.
type Explain = core.Explain

// ExplainAggregate is one aggregate call's entry in an Explain: the call,
// its canonical form (or baseline execution strategy), and the state
// variables its terminating function reads.
type ExplainAggregate = core.ExplainAggregate

// ExplainState is one deduplicated aggregation state in an Explain, with
// its cache provenance in Share mode (hit kind, matched state, scalar
// rewriting, conditions, or miss reason).
type ExplainState = core.ExplainState

// ExplainShard is one shard worker's scatter provenance in an Explain on
// a sharded engine: the shard's slice fingerprint, row range size, and —
// in Share mode — its private cache's probed outcome for every state.
type ExplainShard = core.ExplainShard

// BatchExplain is the structured result of Engine.BatchExplain: the
// batch sharing plan — fingerprint groups, fused-scan task unions, and
// every state's disposition — plus each query's own explanation.
type BatchExplain = core.BatchExplain

// BatchGroupExplain is one fingerprint group in a BatchExplain: the
// queries fused into one scan and the task union that scan computes.
type BatchGroupExplain = core.BatchGroupExplain

// BatchStateExplain is one member state's disposition in a
// BatchExplain: computed, fused with an identical in-flight state,
// derived via Theorem 4.1 from an in-flight state, or served by the
// pre-batch cache.
type BatchStateExplain = core.BatchStateExplain

// BatchSoloExplain marks a batch query that executes standalone
// (subqueries, non-aggregate statements), with the reason.
type BatchSoloExplain = core.BatchSoloExplain

// Trace is a sampled query's span tree, attached to Result.Trace when
// Options.TraceRate sampled the query. Render it with Tree or JSON.
type Trace = obs.Trace

// Span is one timed stage of a traced query; see Trace.
type Span = obs.Span

// MetricsRegistry aggregates engine metrics for export; pass one in
// Options.Metrics to make several engines share an endpoint
// (distinguished by Options.MetricsLabel).
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsServer is a running metrics HTTP endpoint; see Engine.ServeMetrics.
type MetricsServer = obs.MetricsServer

// Storage re-exports, so applications can build and load tables without
// importing internal packages.
type (
	// Table is a named columnar table.
	Table = storage.Table
	// Column is a typed column vector.
	Column = storage.Column
	// ColumnKind is a column type.
	ColumnKind = storage.Kind
)

// Column kinds.
const (
	Float  = storage.KindFloat
	Int    = storage.KindInt
	String = storage.KindString
)

// NewTable creates a table.
func NewTable(name string, cols ...*Column) *Table { return storage.NewTable(name, cols...) }

// NewColumn creates a column.
func NewColumn(name string, kind ColumnKind) *Column { return storage.NewColumn(name, kind) }

// CSVOptions controls CSV loading fault handling.
type CSVOptions = storage.CSVOptions

// LoadCSV reads a table from a CSV file written by Table.SaveCSVFile
// (typed header "name:kind" per field). Malformed rows fail the load with
// a line-numbered error; use LoadCSVWith to skip and count them instead.
func LoadCSV(name, path string) (*Table, error) { return storage.LoadCSVFile(name, path) }

// LoadCSVWith reads a table from a CSV file with explicit fault handling:
// with SkipBadRows set, malformed rows (wrong field count, unparsable
// values) are skipped and counted instead of failing the load. Returns
// the table and the number of rows skipped.
func LoadCSVWith(name, path string, opts CSVOptions) (*Table, int, error) {
	return storage.LoadCSVFileWith(name, path, opts)
}

// Engine is a SUDAF instance: a catalog of tables, a UDAF registry, the
// state cache and the execution engine.
//
// An Engine is safe for concurrent use: any number of goroutines may
// call Query/QueryContext/QueryBatches/Materialize and the setters
// simultaneously. Queries share the striped state cache and the
// engine-wide worker pool; Options.MaxConcurrentQueries bounds how many
// execute at once (excess callers queue, honoring their context).
type Engine struct {
	s *core.Session
}

// Open creates an engine. The zero Options give full parallelism, a
// 256 MiB cache and the l=2 symbolic space.
func Open(opts Options) *Engine {
	return &Engine{s: core.NewSession(opts)}
}

// Session exposes the underlying session for advanced callers (the
// benchmark harness uses it).
func (e *Engine) Session() *core.Session { return e.s }

// Register adds a table to the catalog.
func (e *Engine) Register(t *Table) error { return e.s.Register(t) }

// TableNames lists the registered tables, sorted.
func (e *Engine) TableNames() []string { return e.s.Catalog().Names() }

// DefineUDAF registers a user-defined aggregate from its mathematical
// expression, e.g. DefineUDAF("gm", []string{"x"}, "prod(x)^(1/count())").
// The library pre-registers qm, cm, gm, hm, apm, logsumexp, theta0/1,
// covariance, correlation, skewness, kurtosis and moment-sketch
// quantiles (approx_median, approx_first_quantile, approx_third_quantile).
func (e *Engine) DefineUDAF(name string, params []string, body string) error {
	return e.s.DefineUDAF(name, params, body)
}

// DefineSketchUDAF registers a quantile UDAF backed by a moment sketch
// of order k with a hardcoded max-entropy terminating function.
func (e *Engine) DefineSketchUDAF(name string, k int, q float64) error {
	return e.s.DefineSketchUDAF(name, k, q)
}

// ExplainUDAF returns the canonical form (F, ⊕, T) derived for a
// registered UDAF, rendered as text; ok is false for unknown names.
func (e *Engine) ExplainUDAF(name string) (string, bool) {
	f, ok := e.s.UDAF(name)
	if !ok {
		return "", false
	}
	return f.String(), true
}

// Explain reports how a statement would execute in the given mode,
// without executing it: the normalized data part and its cache
// fingerprint, each aggregate's canonical form (F, ⊕, T), the
// deduplicated aggregation states, the RQ1/RQ2 SQL rewriting, and — in
// Share mode — per-state sharing provenance probed read-only against the
// live cache: the matched cached state, the scalar rewriting r applied,
// the parameter conditions checked, or why the state misses. Render the
// result with its String method, or walk the struct.
//
// Explain never mutates the engine: no execution, no cache stores, no
// LRU touches, no stats. Subqueries are not supported.
func (e *Engine) Explain(sql string, mode Mode) (*Explain, error) {
	return e.s.ExplainQuery(sql, mode)
}

// UDAFNames lists registered UDAFs.
func (e *Engine) UDAFNames() []string { return e.s.UDAFNames() }

// Query runs a SELECT statement in the given mode. It is shorthand for
// QueryContext with context.Background(); see QueryContext for the error
// contract.
func (e *Engine) Query(sql string, mode Mode) (*Result, error) {
	return e.s.Query(sql, mode)
}

// QueryContext is the primary query entrypoint: it runs a SELECT
// statement in the given mode under a context. Cancellation and deadlines
// propagate cooperatively into scans, joins, batch aggregation and output
// construction, polled at batch granularity. The engine's QueryTimeout
// (if set) nests inside ctx.
//
// Errors wrap the package sentinels for errors.Is classification:
// ErrParse (bad SQL), ErrUnknownTable, ErrUnknownUDAF, ErrNumericFault
// (NumericStrict only) and ErrCanceled (which also wraps the originating
// context error).
func (e *Engine) QueryContext(ctx context.Context, sql string, mode Mode) (*Result, error) {
	return e.s.QueryContext(ctx, sql, mode)
}

// QueryBatches runs a SELECT statement and returns a cursor over the
// result in fixed-size column batches, so large outputs are consumed
// incrementally:
//
//	cur, err := eng.QueryBatches(ctx, sql, sudaf.Share)
//	for cur.Next() {
//	    batch := cur.Batch() // *sudaf.Table view, ≤ 1024 rows
//	}
//	err = cur.Err()
//
// It shares QueryContext's error contract (ErrParse, ErrUnknownTable,
// ErrUnknownUDAF, ErrNumericFault, ErrCanceled).
func (e *Engine) QueryBatches(ctx context.Context, sql string, mode Mode) (*BatchCursor, error) {
	return e.s.QueryBatches(ctx, sql, mode)
}

// QueryBatch runs a batch of queries as one submission, sharing work
// across them: the batch is canonicalized as a whole, aggregation
// states are unified pairwise via Theorem 4.1 sharing among the
// in-flight queries (not just against the cache), the surviving states
// are grouped by data fingerprint, and one fused scan per group
// computes each group's union — so N overlapping queries cost far fewer
// than N scans, and in Share mode the state cache warms once per batch.
//
// Results align positionally with reqs and are bit-identical to running
// the same statements sequentially in the same mode. The whole batch
// runs against one catalog snapshot (one version of the data) and
// occupies one admission slot; mode governs every query (per-Request
// modes are ignored). The first failing query aborts the batch: it's
// all results or one error, wrapped with the failing query's index and
// sharing QueryContext's sentinel contract.
func (e *Engine) QueryBatch(ctx context.Context, reqs []Request, mode Mode) ([]*Result, error) {
	return e.s.QueryBatch(ctx, reqs, mode)
}

// BatchExplain reports how QueryBatch would execute a batch without
// executing it: which queries fuse into which scan, which states the
// in-flight batch derives from each other via Theorem 4.1, and which
// the cache already serves. Like Explain, it never mutates the engine.
func (e *Engine) BatchExplain(reqs []Request, mode Mode) (*BatchExplain, error) {
	return e.s.BatchExplain(reqs, mode)
}

// WindowResult is one emission batch of a continuous windowed query;
// see Engine.Subscribe.
type WindowResult = core.WindowResult

// Subscription is a live continuous windowed query opened by
// Engine.Subscribe: read emissions from Results, stop with Close, and
// check Err after the stream closes.
type Subscription = core.Subscription

// Subscribe opens a continuous windowed query: a SELECT with an OVER
// clause (ROWS or EPOCHS, PRECEDING or TUMBLING) over one base table,
// streaming a WindowResult per emission batch as appends land:
//
//	sub, err := eng.Subscribe(ctx, "SELECT avg(price) OVER (ROWS 9 PRECEDING) FROM trades", sudaf.Share)
//	for wr := range sub.Results() {
//	    // wr.Table: one row per emitted window, same shape as the
//	    // one-shot query's output; wr.Seq is contiguous from 1.
//	}
//	err = sub.Err() // nil after a plain Close
//
// The subscription first emits the windows already present in the
// table, then one batch per Append, in append order, exactly once.
// Emitted windows are bit-identical to a one-shot query over the same
// rows. Appends never block on slow consumers — backpressure only
// delays the subscription's own stream (and extends how long old table
// versions stay pinned). Close the subscription (or the engine) to end
// the stream. See docs/WINDOWS.md for frame semantics and the drain
// contract.
func (e *Engine) Subscribe(ctx context.Context, sql string, mode Mode) (*Subscription, error) {
	return e.s.Subscribe(ctx, sql, mode)
}

// AppendResult reports what one append batch did: rows ingested, the
// table-version transition, and how cached states and materialized views
// were carried across it (delta-maintained vs invalidated).
type AppendResult = core.AppendResult

// Append ingests a batch of rows into a registered table. The delta must
// have the table's columns (same names and kinds, any order). Appends are
// snapshot-safe: queries in flight (including streaming cursors and row
// iterators) keep the table version they started on and never observe
// the new rows mid-query.
//
// Cached aggregation states and materialized views over the table are
// delta-maintained — the batch's per-group states are computed on the
// new rows only and ⊕-merged into the cached values — instead of being
// invalidated; anything unmaintainable is dropped with a note in
// AppendResult.Events.
func (e *Engine) Append(ctx context.Context, table string, delta *Table) (*AppendResult, error) {
	return e.s.Append(ctx, table, delta)
}

// AppendCSV ingests a CSV batch (typed header "name:kind" per field, the
// format written by Table.SaveCSVFile) into a registered table; see
// Append for the maintenance and snapshot semantics. Malformed rows are
// skipped — the same skip-bad-rows policy LoadCSVWith offers at initial
// load — and reported via AppendResult.Events instead of failing the
// whole delta; use AppendCSVWith for strict all-or-nothing ingestion.
func (e *Engine) AppendCSV(ctx context.Context, table, path string) (*AppendResult, error) {
	return e.s.AppendCSV(ctx, table, path)
}

// AppendCSVWith ingests a CSV batch with explicit malformed-row
// handling: with SkipBadRows set, bad rows are skipped and surfaced as
// an AppendResult.Events note; without it, the first bad row fails the
// whole delta and nothing is ingested.
func (e *Engine) AppendCSVWith(ctx context.Context, table, path string, opts CSVOptions) (*AppendResult, error) {
	return e.s.AppendCSVWith(ctx, table, path, opts)
}

// Close gracefully drains the engine: new queries, appends and
// materializations fail with ErrEngineClosed, callers queued for an
// admission slot resolve deterministically (slot, ErrCanceled or
// ErrEngineClosed), and Close waits until all in-flight work finishes
// or ctx expires (returning the wrapped context error; stragglers still
// honor their own contexts). Close is idempotent, never interrupts
// admitted work, and leaves the state cache intact.
func (e *Engine) Close(ctx context.Context) error { return e.s.Close(ctx) }

// Closed reports whether Engine.Close has begun.
func (e *Engine) Closed() bool { return e.s.Closed() }

// SetQueryTimeout changes the per-query timeout at runtime (0 disables).
func (e *Engine) SetQueryTimeout(d time.Duration) { e.s.SetQueryTimeout(d) }

// SetNumericPolicy switches strict/permissive numeric fault handling at
// runtime.
func (e *Engine) SetNumericPolicy(p NumericPolicy) { e.s.SetNumericPolicy(p) }

// SetVectorizedKernels toggles the batch aggregation kernels (on by
// default). Off forces tuple-at-a-time accumulation; results are
// identical either way — the knob exists for benchmarks and differential
// tests.
func (e *Engine) SetVectorizedKernels(on bool) { e.s.SetVectorizedKernels(on) }

// SetEncodedFolds toggles aggregation directly over encoded segments
// (RLE run-folds; on by default). Results are bit-identical either way;
// the knob exists for benchmarks and differential tests.
func (e *Engine) SetEncodedFolds(on bool) { e.s.SetEncodedFolds(on) }

// Save persists every registered table (as encoded segment files) and
// the state cache to Options.DataDir, so a future Open against the same
// directory restores the catalog and answers Share-mode queries from
// warm cached states without rescanning base rows. Errors when DataDir
// was not configured.
func (e *Engine) Save() error { return e.s.Save() }

// LoadError returns the joined errors from restoring Options.DataDir at
// Open, or nil. Restoration is best-effort: corrupt files are skipped
// and reported here while everything readable is loaded.
func (e *Engine) LoadError() error { return e.s.LoadError() }

// RewriteSQL renders the SUDAF rewriting of a query as SQL text — the
// partial-aggregate derived-table form (RQ1/RQ2 in the paper) that SUDAF
// would send to an underlying system.
func (e *Engine) RewriteSQL(sql string) (string, error) { return e.s.RewriteSQL(sql) }

// Materialize creates a materialized state view usable for roll-up
// rewriting (and seeds the state cache).
func (e *Engine) Materialize(name, sql string) error { return e.s.Materialize(name, sql) }

// ViewNames lists the materialized state views, sorted.
func (e *Engine) ViewNames() []string {
	names := e.s.Views()
	sort.Strings(names)
	return names
}

// DropView removes a materialized view.
func (e *Engine) DropView(name string) { e.s.DropView(name) }

// CacheStats returns cache counters.
func (e *Engine) CacheStats() CacheStats { return e.s.CacheStats() }

// ResetCacheStats zeroes cache counters.
func (e *Engine) ResetCacheStats() { e.s.ResetCacheStats() }

// ClearCache drops all cached aggregation states.
func (e *Engine) ClearCache() { e.s.ClearCache() }

// Stats returns engine-lifetime aggregate counters.
func (e *Engine) Stats() EngineStats { return e.s.Stats() }

// IngestStats returns engine-lifetime ingestion counters.
func (e *Engine) IngestStats() IngestStats { return e.s.IngestStats() }

// ShardStats returns engine-lifetime scatter-gather counters (all zero
// on an unsharded engine).
func (e *Engine) ShardStats() ShardStats { return e.s.ShardStats() }

// ShardCount returns the configured shard count (0 when sharding is
// off).
func (e *Engine) ShardCount() int { return e.s.ShardCount() }

// ClearShardCaches drops every shard worker's cached partials — the
// per-shard analogue of ClearCache, which only clears the engine-level
// state cache. No-op on an unsharded engine.
func (e *Engine) ClearShardCaches() { e.s.ClearShardCaches() }

// ClearShardWorker drops a single shard worker's cached partials,
// simulating one shard rebooting while its peers stay warm: the next
// scatter rescans only that worker's row range. No-op on an unsharded
// engine or out-of-range index.
func (e *Engine) ClearShardWorker(i int) { e.s.ClearShardWorker(i) }

// Metrics returns the engine's metrics registry: the one passed in
// Options.Metrics, or the private registry created when none was.
func (e *Engine) Metrics() *MetricsRegistry { return e.s.Metrics() }

// ServeMetrics starts an HTTP endpoint on addr (e.g. ":9090", or
// "127.0.0.1:0" to pick a free port — the bound address is in the
// returned server's Addr) serving /metrics in Prometheus text format,
// /debug/vars (expvar) and /debug/pprof. Close the returned server to
// stop it.
func (e *Engine) ServeMetrics(addr string) (*MetricsServer, error) {
	return e.s.ServeMetrics(addr)
}

// EnableViews toggles aggregate-view rewriting.
func (e *Engine) EnableViews(on bool) { e.s.SetViewRewriting(on) }

// SymbolicSpaceDump renders the precomputed symbolic sharing space
// (states, edges, equivalence classes — Figures 4/5 of the paper).
func (e *Engine) SymbolicSpaceDump() string { return e.s.Space().Dump() }

// Internal type re-exports for tooling.
type (
	// Form is a UDAF's canonical form.
	Form = canonical.Form
	// SymbolicSpace is the precomputed sharing space.
	SymbolicSpace = symbolic.Space
)
