package sudaf_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"sudaf"
)

// batchEngine builds an engine with a Milan-grid-style table: squares ×
// hours with a value column, plus the qm/gm UDAFs the paper queries use.
func batchEngine(t *testing.T) *sudaf.Engine {
	t.Helper()
	eng := sudaf.Open(sudaf.Options{Workers: 4})
	rng := rand.New(rand.NewSource(20200330))
	tbl := sudaf.NewTable("milan",
		sudaf.NewColumn("square", sudaf.Int),
		sudaf.NewColumn("hour", sudaf.Int),
		sudaf.NewColumn("internet", sudaf.Float))
	for i := 0; i < 20_000; i++ {
		tbl.Col("square").AppendInt(int64(rng.Intn(50)))
		tbl.Col("hour").AppendInt(int64(rng.Intn(24)))
		tbl.Col("internet").AppendFloat(0.5 + rng.Float64()*99.5)
	}
	if err := eng.Register(tbl); err != nil {
		t.Fatal(err)
	}
	return eng
}

// overlappingQueries is a Milan-style workload: distinct aggregates over
// one shared data part (same tables, filters, grouping — one
// fingerprint), plus one query with its own fingerprint.
func overlappingQueries() []sudaf.Request {
	return []sudaf.Request{
		{SQL: "SELECT square, avg(internet) FROM milan GROUP BY square ORDER BY square"},
		{SQL: "SELECT square, stddev(internet) FROM milan GROUP BY square ORDER BY square"},
		{SQL: "SELECT square, qm(internet) FROM milan GROUP BY square ORDER BY square"},
		{SQL: "SELECT square, gm(internet) FROM milan GROUP BY square ORDER BY square"},
		{SQL: "SELECT hour, sum(internet) FROM milan GROUP BY hour ORDER BY hour"},
	}
}

// requireBitIdentical fails unless two results carry bit-for-bit equal
// output tables (float payloads compared via Float64bits — batch
// execution must be indistinguishable from sequential, not just close)
// and matching execution markers.
func requireBitIdentical(t *testing.T, label string, got, want *sudaf.Result) {
	t.Helper()
	requireSameTable(t, label, got, want)
	if got.Groups != want.Groups {
		t.Fatalf("%s: Groups %d, want %d", label, got.Groups, want.Groups)
	}
	if got.FullCacheHit != want.FullCacheHit {
		t.Fatalf("%s: FullCacheHit %v, want %v", label, got.FullCacheHit, want.FullCacheHit)
	}
	if got.UsedView != want.UsedView {
		t.Fatalf("%s: UsedView %q, want %q", label, got.UsedView, want.UsedView)
	}
}

// requireSameTable compares only the output tables, bit for bit.
func requireSameTable(t *testing.T, label string, got, want *sudaf.Result) {
	t.Helper()
	if got.Table.NumRows() != want.Table.NumRows() {
		t.Fatalf("%s: %d rows, want %d", label, got.Table.NumRows(), want.Table.NumRows())
	}
	if len(got.Table.Cols) != len(want.Table.Cols) {
		t.Fatalf("%s: %d cols, want %d", label, len(got.Table.Cols), len(want.Table.Cols))
	}
	for c := range want.Table.Cols {
		gc, wc := got.Table.Cols[c], want.Table.Cols[c]
		if gc.Kind != wc.Kind {
			t.Fatalf("%s col %d: kind %v, want %v", label, c, gc.Kind, wc.Kind)
		}
		for i := 0; i < want.Table.NumRows(); i++ {
			if gc.Kind == sudaf.String {
				if gc.StringAt(i) != wc.StringAt(i) {
					t.Fatalf("%s col %d row %d: %q != %q", label, c, i, gc.StringAt(i), wc.StringAt(i))
				}
				continue
			}
			gb, wb := math.Float64bits(gc.AsFloat(i)), math.Float64bits(wc.AsFloat(i))
			if gb != wb {
				t.Fatalf("%s col %d row %d: %v (%#x) != %v (%#x)",
					label, c, i, gc.AsFloat(i), gb, wc.AsFloat(i), wb)
			}
		}
	}
}

// TestQueryBatchBitIdenticalToSequential is the batch ≡ sequential
// differential from the issue: for every mode, QueryBatch over a fresh
// engine must produce bit-for-bit the results of running the same
// statements one by one on another fresh engine — including the cache
// dynamics (FullCacheHit on later overlapping queries in Share mode).
func TestQueryBatchBitIdenticalToSequential(t *testing.T) {
	reqs := overlappingQueries()
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		seqEng := batchEngine(t)
		batEng := batchEngine(t)
		want := make([]*sudaf.Result, len(reqs))
		for i, r := range reqs {
			res, err := seqEng.Query(r.SQL, mode)
			if err != nil {
				t.Fatalf("%v sequential %d: %v", mode, i, err)
			}
			want[i] = res
		}
		got, err := batEng.QueryBatch(context.Background(), reqs, mode)
		if err != nil {
			t.Fatalf("%v batch: %v", mode, err)
		}
		if len(got) != len(reqs) {
			t.Fatalf("%v: %d results, want %d", mode, len(got), len(reqs))
		}
		for i := range reqs {
			requireBitIdentical(t, mode.String()+" q"+reqs[i].SQL, got[i], want[i])
		}
	}
}

// TestQueryBatchAdversarialData runs the differential over NaN/±Inf/
// signed-zero data: batch replay must preserve even the pathological
// float semantics bit for bit.
func TestQueryBatchAdversarialData(t *testing.T) {
	reqs := []sudaf.Request{
		{SQL: "SELECT g, sum(v), avg(v) FROM adv GROUP BY g ORDER BY g"},
		{SQL: "SELECT g, min(v) FROM adv GROUP BY g ORDER BY g"},
		{SQL: "SELECT g, pr(v) FROM adv GROUP BY g ORDER BY g"},
		{SQL: "SELECT g, qm(v) FROM adv GROUP BY g ORDER BY g"},
	}
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		seqEng := advEngine(t)
		batEng := advEngine(t)
		want := make([]*sudaf.Result, len(reqs))
		for i, r := range reqs {
			res, err := seqEng.Query(r.SQL, mode)
			if err != nil {
				t.Fatalf("%v sequential %d: %v", mode, i, err)
			}
			want[i] = res
		}
		got, err := batEng.QueryBatch(context.Background(), reqs, mode)
		if err != nil {
			t.Fatalf("%v batch: %v", mode, err)
		}
		for i := range reqs {
			requireBitIdentical(t, mode.String()+" adv q"+reqs[i].SQL, got[i], want[i])
		}
	}
}

// TestQueryBatchSharesScans is the acceptance perf assertion: a batch of
// N queries over one data part executes strictly fewer scans than N —
// here exactly one fused scan, visible in the per-query scan stats.
func TestQueryBatchSharesScans(t *testing.T) {
	// Rewrite mode: no cache, so sequential execution scans once per
	// query — the fused scan's saving is isolated from cache effects.
	reqs := overlappingQueries()[:4] // one fingerprint
	seqEng := batchEngine(t)
	seqRows := 0
	for _, r := range reqs {
		res, err := seqEng.Query(r.SQL, sudaf.Rewrite)
		if err != nil {
			t.Fatal(err)
		}
		if res.RowsScanned == 0 {
			t.Fatalf("sequential rewrite query scanned 0 rows")
		}
		seqRows += res.RowsScanned
	}

	batEng := batchEngine(t)
	got, err := batEng.QueryBatch(context.Background(), reqs, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	batRows, kernels := 0, 0
	for _, res := range got {
		batRows += res.RowsScanned
		kernels += len(res.Stats.Kernels)
	}
	if batRows*len(reqs) != seqRows {
		t.Fatalf("batch scanned %d rows, sequential %d: want exactly 1/%d",
			batRows, seqRows, len(reqs))
	}
	if kernels == 0 {
		t.Fatal("no kernel attribution recorded for the fused scan")
	}

	// The engine-wide counter tells the same story.
	if st := batEng.Stats(); int(st.RowsScanned)*len(reqs) != seqRows {
		t.Fatalf("engine RowsScanned = %d, want %d", st.RowsScanned, seqRows/len(reqs))
	}

	// And the plan agrees before execution: one fused scan for N queries.
	be, err := batEng.BatchExplain(reqs, sudaf.Rewrite)
	if err != nil {
		t.Fatal(err)
	}
	if be.Scans != 1 || len(be.Groups) != 1 {
		t.Fatalf("BatchExplain: %d scans over %d groups, want 1/1", be.Scans, len(be.Groups))
	}
	if got, want := len(be.Groups[0].Members), len(reqs); got != want {
		t.Fatalf("group members = %d, want %d", got, want)
	}
}

// TestQueryBatchSingleElement pins the degenerate batch: one query must
// behave exactly like a plain Query call, mode by mode.
func TestQueryBatchSingleElement(t *testing.T) {
	for _, mode := range []sudaf.Mode{sudaf.Baseline, sudaf.Rewrite, sudaf.Share} {
		seqEng := batchEngine(t)
		batEng := batchEngine(t)
		sql := "SELECT square, stddev(internet) FROM milan GROUP BY square ORDER BY square"
		want, err := seqEng.Query(sql, mode)
		if err != nil {
			t.Fatal(err)
		}
		got, err := batEng.QueryBatch(context.Background(), []sudaf.Request{{SQL: sql}}, mode)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("%d results", len(got))
		}
		requireBitIdentical(t, mode.String()+" single", got[0], want)
	}
}

// TestQueryBatchEmptyAndErrors pins the batch error contract: empty
// batches are a no-op, and the first failing query aborts the whole
// batch with its index and the usual sentinel.
func TestQueryBatchEmptyAndErrors(t *testing.T) {
	eng := batchEngine(t)
	res, err := eng.QueryBatch(context.Background(), nil, sudaf.Share)
	if err != nil || res != nil {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	_, err = eng.QueryBatch(context.Background(), []sudaf.Request{
		{SQL: "SELECT square, avg(internet) FROM milan GROUP BY square"},
		{SQL: "SELECT square, prod(internet) FROM milan GROUP BY square"},
	}, sudaf.Share)
	if !errors.Is(err, sudaf.ErrUnknownUDAF) {
		t.Fatalf("err = %v, want ErrUnknownUDAF", err)
	}
	if !strings.Contains(err.Error(), "batch query 1") {
		t.Fatalf("error does not name the failing query: %v", err)
	}
	_, err = eng.QueryBatch(context.Background(), []sudaf.Request{{SQL: "SELEC nope"}}, sudaf.Share)
	if !errors.Is(err, sudaf.ErrParse) {
		t.Fatalf("err = %v, want ErrParse", err)
	}
}

// TestQueryBatchRacingAppend races whole batches against concurrent
// appends. Each batch must run against one consistent snapshot: two
// identical queries inside one batch must agree bit for bit even while
// the table grows underneath, and nothing may error. Run under -race in
// the stress matrix.
func TestQueryBatchRacingAppend(t *testing.T) {
	eng := batchEngine(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			delta := sudaf.NewTable("milan",
				sudaf.NewColumn("square", sudaf.Int),
				sudaf.NewColumn("hour", sudaf.Int),
				sudaf.NewColumn("internet", sudaf.Float))
			for i := 0; i < 64; i++ {
				delta.Col("square").AppendInt(int64(rng.Intn(50)))
				delta.Col("hour").AppendInt(int64(rng.Intn(24)))
				delta.Col("internet").AppendFloat(0.5 + rng.Float64()*99.5)
			}
			if _, err := eng.Append(context.Background(), "milan", delta); err != nil {
				t.Errorf("append: %v", err)
				return
			}
		}
	}()
	sql := "SELECT square, qm(internet), stddev(internet) FROM milan GROUP BY square ORDER BY square"
	for iter := 0; iter < 20; iter++ {
		got, err := eng.QueryBatch(context.Background(),
			[]sudaf.Request{{SQL: sql}, {SQL: sql}}, sudaf.Share)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		// The twins share one snapshot: identical output tables (the
		// second is typically a full cache hit, so only tables compare).
		requireSameTable(t, "racing twin", got[1], got[0])
	}
	close(stop)
	wg.Wait()
}

// TestBatchExplainDispositions checks the planned sharing provenance:
// overlapping aggregates fuse or derive instead of being recomputed, and
// a warmed cache takes over.
func TestBatchExplainDispositions(t *testing.T) {
	eng := batchEngine(t)
	reqs := []sudaf.Request{
		{SQL: "SELECT square, avg(internet) FROM milan GROUP BY square"},
		{SQL: "SELECT square, stddev(internet) FROM milan GROUP BY square"},
	}
	be, err := eng.BatchExplain(reqs, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if len(be.Groups) != 1 {
		t.Fatalf("%d groups, want 1", len(be.Groups))
	}
	disp := map[string]int{}
	for _, st := range be.Groups[0].States {
		disp[st.Disposition]++
	}
	// avg plans {sum, count}; stddev re-uses both (count and sum(x)
	// identical → batch:fused) and adds sum(x²) (computed).
	if disp["batch:fused"] == 0 {
		t.Fatalf("no fused states in %v\n%s", disp, be)
	}
	if disp["computed"] == 0 {
		t.Fatalf("no computed states in %v", disp)
	}
	if be.Scans != 1 {
		t.Fatalf("Scans = %d, want 1", be.Scans)
	}

	// Warm the cache, re-plan: the cache now serves every state.
	if _, err := eng.Query(reqs[1].SQL, sudaf.Share); err != nil {
		t.Fatal(err)
	}
	be2, err := eng.BatchExplain(reqs, sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range be2.Groups[0].States {
		if !strings.HasPrefix(st.Disposition, "cache:") {
			t.Fatalf("state %s still %s after warmup\n%s", st.State, st.Disposition, be2)
		}
	}
	if be2.Scans != 0 {
		t.Fatalf("Scans = %d after warmup, want 0", be2.Scans)
	}
	if s := be2.String(); !strings.Contains(s, "fused scans: 0") {
		t.Fatalf("String missing scan line:\n%s", s)
	}
}

// TestQueryBatchWarmsCache pins the cache hand-off: a batch in Share
// mode leaves the cache as warm as the sequential run would, so a
// follow-up query is a full cache hit.
func TestQueryBatchWarmsCache(t *testing.T) {
	eng := batchEngine(t)
	if _, err := eng.QueryBatch(context.Background(), overlappingQueries()[:4], sudaf.Share); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(
		"SELECT square, variance(internet) FROM milan GROUP BY square", sudaf.Share)
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsScanned != 0 || !res.FullCacheHit {
		t.Fatalf("follow-up not served from batch-warmed cache: scanned %d, fullHit %v",
			res.RowsScanned, res.FullCacheHit)
	}
}
